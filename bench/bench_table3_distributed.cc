// Reproduces Table 3: "Performance of the distributed runs".
//
//   - Full run, hot data: sequential (full collection, one engine) vs 8
//     servers (1/8 of the collection each).
//   - "Using less servers (1 stream, fixed partition size)": clusters of
//     1/2/4/8 nodes where every node always holds 1/8 of the collection —
//     latency *grows* with more servers because it is gated by the slowest
//     of N samples (load imbalance).
//   - "Increasing the concurrency (8 servers)": 1/2/4/8 closed-loop query
//     streams — per-query latency deteriorates sub-linearly while amortized
//     time (throughput) keeps improving.
//   - Shared-θ vs independent top-k-then-merge: deterministic sequential
//     scatter over the same batch in both modes; the gated counters show
//     the global-threshold channel generating strictly fewer candidates.
//
// Substitutions (DESIGN.md §11.5): nodes are threads with private buffer
// managers; the heterogeneous-LAN load imbalance is modeled by per-node
// service-time stretch factors (max/min = 2, the spread the paper reports).
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <numeric>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "common/string_util.h"
#include "common/table_printer.h"
#include "dist/cluster.h"
#include "ir/search_engine.h"

namespace x100ir {
namespace {

constexpr uint32_t kTotalPartitions = 8;
constexpr ir::RunType kRunType = ir::RunType::kBm25TCMQ8;
// Service times rescaled to the paper's millisecond regime so queueing,
// not thread-dispatch overhead, dominates the closed-loop experiment.
constexpr double kServiceScale = 30.0;

// Heterogeneity profile: slowest node ~2x the fastest (Table 3: 11 vs 5.5).
const std::vector<double> kSpeedFactors = {1.0,  1.05, 1.12, 1.2,
                                           1.32, 1.45, 1.7,  2.0};

struct StreamRow {
  uint32_t streams = 0;
  double latency_ms = 0.0;
  double amortized_ms = 0.0;
};

int Run() {
  std::printf("=== Table 3: performance of the distributed runs ===\n\n");
  core::Database db;
  bench::CheckOk(bench::OpenBenchDatabase(&db), "open database");

  ir::QueryGenOptions qopts = bench::BenchQueryOptions();
  ir::QueryGenerator gen(db.corpus(), qopts);
  auto queries = gen.EfficiencyQueries();
  if (queries.size() > 600 && !bench::LargeScale()) queries.resize(600);
  std::vector<ir::Query> warm_slice(
      queries.begin(),
      queries.begin() + std::min<size_t>(queries.size(), 200));

  // Nodes are dual-core like the paper's Athlon64 X2 machines. The 8-way
  // partition indexes build on first run and fingerprint-reuse after
  // (every cluster size opens a prefix of the same 8 partitions).
  const std::string cluster_dir = bench::BenchDir() + "/cluster8";
  auto open_cluster = [&](uint32_t servers, dist::Cluster* cluster) {
    dist::ClusterOptions copts;
    copts.num_partitions = servers;
    copts.total_partitions = kTotalPartitions;
    copts.network_ms = 0.15;
    copts.service_scale = kServiceScale;
    copts.cores_per_node = 2;
    copts.speed_factors.assign(kSpeedFactors.begin(),
                               kSpeedFactors.begin() + servers);
    copts.storage = bench::BenchStorageOptions();
    bench::CheckOk(cluster->Open(db.corpus(), cluster_dir, copts),
                   "open cluster");
  };

  // --- Full run, hot data: sequential vs 8 servers. --------------------
  // This section uses a heavier workload than the rest of the bench
  // (BM25 on-the-fly scoring, k=100, queries with >=3 terms): the paper's
  // hot full run is in the tens-of-milliseconds regime where per-document
  // work dominates, and at small k / short queries our per-query fixed
  // overhead (plan setup, context allocation) does not shrink 8-way.
  std::vector<ir::Query> heavy;
  for (const auto& q : queries) {
    if (q.terms.size() >= 3) heavy.push_back(q);
  }
  if (heavy.size() > 240) heavy.resize(240);
  if (heavy.size() < 20) heavy = queries;  // tiny vocabularies: short queries
  constexpr ir::RunType kHotRunType = ir::RunType::kBm25;
  constexpr uint32_t kHotK = 100;

  TablePrinter full_table({"config", "avg query time (ms)",
                           "amortized (ms)", "node min (ms)",
                           "node avg (ms)", "node max (ms)"});
  double sequential_ms = 0.0;
  {
    ir::SearchOptions opts;
    opts.k = kHotK;
    ir::SearchResult result;
    for (const auto& q : heavy) {
      bench::CheckOk(db.Search(q, kHotRunType, opts, &result), "warm");
    }
    double total = 0.0;
    for (const auto& q : heavy) {
      bench::CheckOk(db.Search(q, kHotRunType, opts, &result), "search");
      total += result.TotalSeconds();
    }
    // Same x30 service scaling as the cluster nodes, for comparability.
    sequential_ms =
        kServiceScale * total * 1e3 / static_cast<double>(heavy.size());
    full_table.AddRow({"Sequential (full collection)",
                       StrFormat("%.3f", sequential_ms), "-", "-", "-", "-"});
  }

  // Modeled slowest-of-N latency, free of single-host contention: scatter
  // sequentially on an unstretched cluster (so each shard's measured time
  // is a clean solo run), then charge every shard its heterogeneity
  // factor and take the max — exactly what an 8-machine LAN would gate
  // on. The measured closed-loop row below shares one host's cores
  // across all 8 "nodes", so its shard times include co-scheduling
  // interference that real separate machines would not see.
  double modeled8_ms = 0.0;
  std::vector<double> modeled_node_ms(kTotalPartitions, 0.0);
  {
    dist::Cluster model;
    dist::ClusterOptions mopts;
    mopts.num_partitions = kTotalPartitions;
    mopts.total_partitions = kTotalPartitions;
    mopts.storage = bench::BenchStorageOptions();
    bench::CheckOk(model.Open(db.corpus(), cluster_dir, mopts),
                   "open model cluster");
    dist::DistSearchOptions dopts;
    dopts.sequential = true;
    dopts.search.k = kHotK;
    dist::DistResult r;
    for (const auto& q : heavy) {
      bench::CheckOk(model.Search(q, kHotRunType, dopts, &r), "model warm");
    }
    for (const auto& q : heavy) {
      bench::CheckOk(model.Search(q, kHotRunType, dopts, &r), "model");
      double slowest = 0.0;
      for (uint32_t n = 0; n < kTotalPartitions; ++n) {
        const double node_ms =
            kServiceScale * r.shard_service_ms[n] * kSpeedFactors[n];
        modeled_node_ms[n] += node_ms;
        slowest = std::max(slowest, node_ms);
      }
      modeled8_ms += slowest + 0.15;  // + one network round-trip
    }
    modeled8_ms /= static_cast<double>(heavy.size());
    for (double& v : modeled_node_ms) v /= static_cast<double>(heavy.size());
    full_table.AddRow(
        {"8 servers (modeled slowest-of-N)", StrFormat("%.3f", modeled8_ms),
         "-",
         StrFormat("%.3f", *std::min_element(modeled_node_ms.begin(),
                                             modeled_node_ms.end())),
         StrFormat("%.3f", std::accumulate(modeled_node_ms.begin(),
                                           modeled_node_ms.end(), 0.0) /
                               kTotalPartitions),
         StrFormat("%.3f", *std::max_element(modeled_node_ms.begin(),
                                             modeled_node_ms.end()))});
  }

  dist::StreamRunStats eight_one_stream;
  {
    dist::Cluster cluster;
    open_cluster(8, &cluster);
    bench::CheckOk(cluster.WarmUp(heavy, kHotRunType, kHotK), "warmup");
    bench::CheckOk(cluster.RunStreams(heavy, kHotRunType, kHotK, 1,
                                      /*share_theta=*/false,
                                      &eight_one_stream),
                   "streams");
    full_table.AddRow(
        {"8 servers (measured, shared host)",
         StrFormat("%.3f", eight_one_stream.query_latency_ms.Mean()),
         StrFormat("%.3f", eight_one_stream.AmortizedMs()),
         StrFormat("%.3f", eight_one_stream.MinNodeMs()),
         StrFormat("%.3f", eight_one_stream.AvgNodeMs()),
         StrFormat("%.3f", eight_one_stream.MaxNodeMs())});
  }
  std::printf("-- Full run (hot data: BM25, k=%u, >=3-term queries) --\n",
              kHotK);
  full_table.Print();
  const double hot_latency_ms = eight_one_stream.query_latency_ms.Mean();
  const double dist_speedup8 = sequential_ms / std::max(1e-9, modeled8_ms);
  uint64_t stream_errors = eight_one_stream.errors;

  // --- Using fewer servers, fixed partition size. -----------------------
  std::printf("\n-- Using less servers (1 stream, fixed partition size) --\n");
  TablePrinter servers_table({"servers", "avg query time (ms)",
                              "node min (ms)", "node avg (ms)",
                              "node max (ms)"});
  std::vector<std::pair<uint32_t, double>> server_latency;
  for (uint32_t servers : {8u, 4u, 2u, 1u}) {
    dist::Cluster cluster;
    open_cluster(servers, &cluster);
    bench::CheckOk(cluster.WarmUp(warm_slice, kRunType, 20), "warmup");
    dist::StreamRunStats stats;
    bench::CheckOk(cluster.RunStreams(queries, kRunType, 20, 1,
                                      /*share_theta=*/false, &stats),
                   "streams");
    stream_errors += stats.errors;
    server_latency.emplace_back(servers, stats.query_latency_ms.Mean());
    servers_table.AddRow({StrFormat("%u", servers),
                          StrFormat("%.3f", stats.query_latency_ms.Mean()),
                          StrFormat("%.3f", stats.MinNodeMs()),
                          StrFormat("%.3f", stats.AvgNodeMs()),
                          StrFormat("%.3f", stats.MaxNodeMs())});
  }
  servers_table.Print();
  // slowest-of-N: the 8-server cluster includes the 2.0x node, the
  // 1-server cluster only the 1.0x node — same partition size each.
  const double fixed_partition_ratio =
      server_latency.front().second /
      std::max(1e-9, server_latency.back().second);

  // --- Increasing the concurrency (8 servers). --------------------------
  std::printf("\n-- Increasing the concurrency (8 servers) --\n");
  TablePrinter streams_table({"streams", "avg latency (ms)",
                              "amortized (ms)", "node min (ms)",
                              "node avg (ms)", "node max (ms)"});
  std::vector<StreamRow> stream_rows;
  {
    dist::Cluster cluster;
    open_cluster(8, &cluster);
    bench::CheckOk(cluster.WarmUp(warm_slice, kRunType, 20), "warmup");
    for (uint32_t streams : {1u, 2u, 4u, 8u}) {
      dist::StreamRunStats stats;
      bench::CheckOk(cluster.RunStreams(queries, kRunType, 20, streams,
                                        /*share_theta=*/false, &stats),
                     "streams");
      stream_errors += stats.errors;
      streams_table.AddRow({StrFormat("%u", streams),
                            StrFormat("%.3f", stats.query_latency_ms.Mean()),
                            StrFormat("%.3f", stats.AmortizedMs()),
                            StrFormat("%.3f", stats.MinNodeMs()),
                            StrFormat("%.3f", stats.AvgNodeMs()),
                            StrFormat("%.3f", stats.MaxNodeMs())});
      stream_rows.push_back({streams, stats.query_latency_ms.Mean(),
                             stats.AmortizedMs()});
    }
  }
  streams_table.Print();
  const double amortized_gain =
      stream_rows.front().amortized_ms /
      std::max(1e-9, stream_rows.back().amortized_ms);
  const double latency_blowup =
      stream_rows.back().latency_ms /
      std::max(1e-9, stream_rows.front().latency_ms);

  // --- Shared-θ vs independent merge (deterministic, unstretched). ------
  // kBm25 MaxScore over the same 8-way split, sequential scatter so shard
  // i always seeds from shards 0..i-1's published bound: the candidate
  // counts are exact counters, not a race. Results merge identically in
  // both modes (dist_test proves it rank-by-rank); what changes is work.
  std::printf("\n-- Shared-theta pruning vs independent top-k merge --\n");
  uint64_t theta_indep_candidates = 0, theta_shared_candidates = 0;
  uint64_t theta_indep_pruned = 0, theta_shared_pruned = 0;
  {
    dist::Cluster cluster;
    dist::ClusterOptions copts;
    copts.num_partitions = kTotalPartitions;
    copts.total_partitions = kTotalPartitions;
    copts.storage = bench::BenchStorageOptions();
    bench::CheckOk(cluster.Open(db.corpus(), cluster_dir, copts),
                   "open theta cluster");
    for (const auto& q : queries) {
      for (bool share : {false, true}) {
        dist::DistSearchOptions dopts;
        dopts.sequential = true;
        dopts.share_theta = share;
        dist::DistResult r;
        bench::CheckOk(cluster.Search(q, ir::RunType::kBm25, dopts, &r),
                       "theta search");
        (share ? theta_shared_candidates : theta_indep_candidates) +=
            r.merged.num_matches;
        (share ? theta_shared_pruned : theta_indep_pruned) +=
            r.merged.stats.vectors_pruned;
      }
    }
  }
  std::printf(
      "  candidates scored: independent %llu, shared-theta %llu (-%.1f%%)\n"
      "  posting vectors pruned: independent %llu, shared-theta %llu\n",
      static_cast<unsigned long long>(theta_indep_candidates),
      static_cast<unsigned long long>(theta_shared_candidates),
      100.0 * (1.0 - static_cast<double>(theta_shared_candidates) /
                         std::max<uint64_t>(1, theta_indep_candidates)),
      static_cast<unsigned long long>(theta_indep_pruned),
      static_cast<unsigned long long>(theta_shared_pruned));

  std::printf(
      "\nPaper's Table 3 (8-machine LAN, hot data; reference only):\n"
      "  Sequential 23.1ms; 8 servers 11.26ms (node min/avg/max "
      "5.50/6.39/11.00)\n"
      "  servers 4/2/1: 9.21/7.30/7.41ms\n"
      "  streams 1/2/4/8 (amortized): 11.26/4.86/3.64/3.26ms\n");

  std::printf("\nshape checks:\n");
  std::printf("  load imbalance: slowest node %.2fx the fastest (paper: "
              "~2x)\n",
              eight_one_stream.MaxNodeMs() /
                  std::max(1e-9, eight_one_stream.MinNodeMs()));
  std::printf(
      "  concurrency scales throughput: amortized %.3f -> %.3f ms "
      "(%.2fx) while latency %.3f -> %.3f ms (%.2fx, sub-linear)\n",
      stream_rows.front().amortized_ms, stream_rows.back().amortized_ms,
      amortized_gain, stream_rows.front().latency_ms,
      stream_rows.back().latency_ms, latency_blowup);
  std::printf(
      "  note: at bench scale per-query work is microseconds, so fixed "
      "dispatch overheads dominate the latency columns; run with "
      "X100IR_BENCH_SCALE=large for paper-like latency ratios.\n");

  // -- Gates --------------------------------------------------------------
  // Ratios and counters only; absolute times are host-dependent and
  // recorded, never gated. dist_speedup8 gates the *modeled* slowest-of-N
  // latency (contention-free solo shard runs x heterogeneity factor), not
  // the shared-host closed-loop row. It still self-disables at tiny scale
  // (speedup_gated=0): a 500-doc partition's query is dominated by fixed
  // per-query engine overhead (plan setup, pool lookups) that does not
  // shrink 8-way, so the distributed run cannot beat sequential until
  // partitions are big enough for scalable work to dominate.
  const bool speedup_gated = bench::Scale() != bench::BenchScale::kTiny;
  std::printf("GATE speedup_gated %d\n", speedup_gated ? 1 : 0);
  std::printf("GATE dist_speedup8 %.3f\n", dist_speedup8);
  std::printf("GATE fixed_partition_ratio %.3f\n", fixed_partition_ratio);
  std::printf("GATE streams_amortized_gain %.3f\n", amortized_gain);
  std::printf("GATE streams_latency_blowup %.3f\n", latency_blowup);
  std::printf("GATE stream_errors %llu\n",
              static_cast<unsigned long long>(stream_errors));
  std::printf("GATE theta_indep_candidates %llu\n",
              static_cast<unsigned long long>(theta_indep_candidates));
  std::printf("GATE theta_shared_candidates %llu\n",
              static_cast<unsigned long long>(theta_shared_candidates));

  const char* json_path = std::getenv("X100IR_BENCH_JSON");
  if (json_path != nullptr) {
    std::FILE* f = std::fopen(json_path, "w");
    bench::CheckOk(f != nullptr ? OkStatus() : IOError("cannot write json"),
                   "open json");
    std::fprintf(
        f,
        "{\n"
        "  \"comment\": \"Table 3, distributed runs over an in-process "
        "8-way doc-partitioned cluster (threads as nodes, per-node "
        "service-time stretch modeling the paper's heterogeneous LAN, "
        "x%.0f service scaling). Absolute times are host-dependent; the "
        "gated values are the ratios and the shared-theta counters.\",\n"
        "  \"command\": \"X100IR_BENCH_JSON=BENCH_table3.json "
        "./build/bench_table3_distributed\",\n"
        "  \"full_run_hot\": {\"sequential_ms\": %.4f, "
        "\"dist8_modeled_ms\": %.4f, \"dist8_measured_ms\": %.4f, "
        "\"dist8_amortized_ms\": %.4f, "
        "\"node_min_ms\": %.4f, \"node_avg_ms\": %.4f, "
        "\"node_max_ms\": %.4f, \"speedup\": %.3f},\n",
        kServiceScale, sequential_ms, modeled8_ms, hot_latency_ms,
        eight_one_stream.AmortizedMs(), eight_one_stream.MinNodeMs(),
        eight_one_stream.AvgNodeMs(), eight_one_stream.MaxNodeMs(),
        dist_speedup8);
    std::fprintf(f, "  \"fewer_servers_fixed_partition\": [\n");
    for (size_t i = 0; i < server_latency.size(); ++i) {
      std::fprintf(f, "    {\"servers\": %u, \"latency_ms\": %.4f}%s\n",
                   server_latency[i].first, server_latency[i].second,
                   i + 1 == server_latency.size() ? "" : ",");
    }
    std::fprintf(f, "  ],\n  \"streams_8_servers\": [\n");
    for (size_t i = 0; i < stream_rows.size(); ++i) {
      std::fprintf(f,
                   "    {\"streams\": %u, \"latency_ms\": %.4f, "
                   "\"amortized_ms\": %.4f}%s\n",
                   stream_rows[i].streams, stream_rows[i].latency_ms,
                   stream_rows[i].amortized_ms,
                   i + 1 == stream_rows.size() ? "" : ",");
    }
    std::fprintf(
        f,
        "  ],\n"
        "  \"shared_theta\": {\"queries\": %llu, "
        "\"independent_candidates\": %llu, \"shared_candidates\": %llu, "
        "\"independent_vectors_pruned\": %llu, "
        "\"shared_vectors_pruned\": %llu}\n"
        "}\n",
        static_cast<unsigned long long>(queries.size()),
        static_cast<unsigned long long>(theta_indep_candidates),
        static_cast<unsigned long long>(theta_shared_candidates),
        static_cast<unsigned long long>(theta_indep_pruned),
        static_cast<unsigned long long>(theta_shared_pruned));
    std::fclose(f);
    std::fprintf(stderr, "[bench] wrote %s\n", json_path);
  }

  // Hard in-binary failures (mirrored by CI's awk gate). Conservative
  // floors: the paper reports 2.05x for the hot 8-way run; our modeled
  // stand-in lands ~1.6x at default scale because per-query fixed engine
  // overhead is a larger fraction of a microsecond-regime query than of
  // the paper's 50GB-per-node workload (DESIGN.md §11).
  if (stream_errors != 0) {
    std::fprintf(stderr, "FAIL: closed-loop streams saw query errors\n");
    return 1;
  }
  if (speedup_gated && dist_speedup8 < 1.2) {
    std::fprintf(stderr, "FAIL: 8-way hot speedup %.2fx < 1.2x floor\n",
                 dist_speedup8);
    return 1;
  }
  if (fixed_partition_ratio < 1.05) {
    std::fprintf(stderr,
                 "FAIL: fixed-partition latency did not grow with cluster "
                 "size (%.3f)\n",
                 fixed_partition_ratio);
    return 1;
  }
  if (amortized_gain < 1.2) {
    std::fprintf(stderr,
                 "FAIL: concurrency amortized gain %.2fx < 1.2x floor\n",
                 amortized_gain);
    return 1;
  }
  if (latency_blowup >= 8.0) {
    std::fprintf(stderr,
                 "FAIL: latency grew super-linearly with streams (%.2fx)\n",
                 latency_blowup);
    return 1;
  }
  if (theta_shared_candidates >= theta_indep_candidates) {
    std::fprintf(stderr,
                 "FAIL: shared-theta did not reduce candidates "
                 "(%llu >= %llu)\n",
                 static_cast<unsigned long long>(theta_shared_candidates),
                 static_cast<unsigned long long>(theta_indep_candidates));
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace x100ir

int main() { return x100ir::Run(); }
