// Reproduces Table 3: "Performance of the distributed runs".
//
//   - Full run, hot data: sequential (full collection, one engine) vs 8
//     servers (1/8 of the collection each).
//   - "Using less servers (1 stream, fixed partition size)": clusters of
//     1/2/4/8 nodes where every node always holds 1/8 of the collection —
//     latency *grows* with more servers because it is gated by the slowest
//     of N samples (load imbalance).
//   - "Increasing the concurrency (8 servers)": 1/2/4/8 closed-loop query
//     streams — per-query latency deteriorates sub-linearly while amortized
//     time (throughput) keeps improving.
//
// Substitutions (DESIGN.md §3.4): nodes are threads with private buffer
// managers; the heterogeneous-LAN load imbalance is modeled by per-node
// service-time stretch factors (max/min = 2, the spread the paper reports).
#include <cstdio>
#include <filesystem>
#include <vector>

#include "bench/bench_util.h"
#include "common/string_util.h"
#include "common/table_printer.h"
#include "common/thread_pool.h"
#include "dist/cluster.h"
#include "ir/search_engine.h"

namespace x100ir {
namespace {

constexpr uint32_t kTotalPartitions = 8;
constexpr ir::RunType kRunType = ir::RunType::kBm25TCMQ8;
constexpr double kServiceScale = 30.0;

// Heterogeneity profile: slowest node ~2x the fastest (Table 3: 11 vs 5.5).
const std::vector<double> kSpeedFactors = {1.0,  1.05, 1.12, 1.2,
                                           1.32, 1.45, 1.7,  2.0};

int Run() {
  std::printf("=== Table 3: performance of the distributed runs ===\n\n");
  core::Database db;
  bench::CheckOk(bench::OpenBenchDatabase(&db), "open database");

  ir::QueryGenOptions qopts = bench::BenchQueryOptions();
  ir::QueryGenerator gen(db.corpus(), qopts);
  auto queries = gen.EfficiencyQueries();
  if (queries.size() > 600 && !bench::LargeScale()) queries.resize(600);
  std::vector<ir::Query> warm_slice(
      queries.begin(),
      queries.begin() + std::min<size_t>(queries.size(), 200));

  // Build the 8-way partitioned index once (cached across bench runs).
  std::string cluster_dir = bench::BenchDir() + "/cluster8";
  if (!std::filesystem::exists(cluster_dir + "/part7/meta.bin")) {
    std::fprintf(stderr, "[bench] building %u partition indexes...\n",
                 kTotalPartitions);
    ir::IndexBuildOptions build;
    ThreadPool pool(kTotalPartitions);
    bench::CheckOk(
        dist::Cluster::BuildPartitions(db.corpus(), cluster_dir,
                                       kTotalPartitions, build, &pool),
        "build partitions");
  }

  // Service times are rescaled to the paper's millisecond regime (x30) so
  // queueing, not thread-dispatch overhead, dominates; nodes are dual-core
  // like the paper's Athlon64 X2 machines.
  auto open_cluster = [&](uint32_t servers, dist::Cluster* cluster) {
    dist::ClusterOptions copts;
    copts.num_partitions = servers;
    copts.total_partitions = kTotalPartitions;
    copts.network_ms = 0.15;
    copts.service_scale = kServiceScale;
    copts.cores_per_node = 2;
    copts.speed_factors.assign(kSpeedFactors.begin(),
                               kSpeedFactors.begin() + servers);
    bench::CheckOk(cluster->Open(cluster_dir, copts), "open cluster");
  };

  // --- Full run, hot data: sequential vs 8 servers. --------------------
  TablePrinter full_table({"config", "avg query time (ms)",
                           "amortized (ms)", "node min (ms)",
                           "node avg (ms)", "node max (ms)"});
  double sequential_ms = 0.0;
  {
    ir::SearchOptions opts;
    ir::SearchResult result;
    for (const auto& q : queries) {
      bench::CheckOk(db.Search(q, kRunType, opts, &result), "warm");
    }
    double total = 0.0;
    for (const auto& q : queries) {
      bench::CheckOk(db.Search(q, kRunType, opts, &result), "search");
      total += result.TotalSeconds();
    }
    // Same x30 service scaling as the cluster nodes, for comparability.
    sequential_ms =
        kServiceScale * total * 1e3 / static_cast<double>(queries.size());
    full_table.AddRow({"Sequential (full collection)",
                       StrFormat("%.3f", sequential_ms), "-", "-", "-", "-"});
  }

  dist::StreamRunStats eight_one_stream;
  {
    dist::Cluster cluster;
    open_cluster(8, &cluster);
    bench::CheckOk(cluster.WarmUp(queries, kRunType, 20), "warmup");
    bench::CheckOk(cluster.RunStreams(queries, kRunType, 20, 1,
                                      &eight_one_stream),
                   "streams");
    full_table.AddRow(
        {"8 servers (1/8 each)",
         StrFormat("%.3f", eight_one_stream.query_latency_ms.Mean()),
         StrFormat("%.3f", eight_one_stream.AmortizedMs()),
         StrFormat("%.3f", eight_one_stream.MinNodeMs()),
         StrFormat("%.3f", eight_one_stream.AvgNodeMs()),
         StrFormat("%.3f", eight_one_stream.MaxNodeMs())});
  }
  std::printf("-- Full run (hot data) --\n");
  full_table.Print();

  // --- Using fewer servers, fixed partition size. -----------------------
  std::printf("\n-- Using less servers (1 stream, fixed partition size) --\n");
  TablePrinter servers_table({"servers", "avg query time (ms)",
                              "node min (ms)", "node avg (ms)",
                              "node max (ms)"});
  for (uint32_t servers : {8u, 4u, 2u, 1u}) {
    dist::Cluster cluster;
    open_cluster(servers, &cluster);
    bench::CheckOk(cluster.WarmUp(warm_slice, kRunType, 20), "warmup");
    dist::StreamRunStats stats;
    bench::CheckOk(cluster.RunStreams(queries, kRunType, 20, 1, &stats),
                   "streams");
    servers_table.AddRow({StrFormat("%u", servers),
                          StrFormat("%.3f", stats.query_latency_ms.Mean()),
                          StrFormat("%.3f", stats.MinNodeMs()),
                          StrFormat("%.3f", stats.AvgNodeMs()),
                          StrFormat("%.3f", stats.MaxNodeMs())});
  }
  servers_table.Print();

  // --- Increasing the concurrency (8 servers). --------------------------
  std::printf("\n-- Increasing the concurrency (8 servers) --\n");
  TablePrinter streams_table({"streams", "avg latency (ms)",
                              "amortized (ms)", "node min (ms)",
                              "node avg (ms)", "node max (ms)"});
  dist::Cluster cluster;
  open_cluster(8, &cluster);
  bench::CheckOk(cluster.WarmUp(warm_slice, kRunType, 20), "warmup");
  std::vector<std::pair<uint32_t, dist::StreamRunStats>> stream_results;
  for (uint32_t streams : {1u, 2u, 4u, 8u}) {
    dist::StreamRunStats stats;
    bench::CheckOk(cluster.RunStreams(queries, kRunType, 20, streams, &stats),
                   "streams");
    streams_table.AddRow({StrFormat("%u", streams),
                          StrFormat("%.3f", stats.query_latency_ms.Mean()),
                          StrFormat("%.3f", stats.AmortizedMs()),
                          StrFormat("%.3f", stats.MinNodeMs()),
                          StrFormat("%.3f", stats.AvgNodeMs()),
                          StrFormat("%.3f", stats.MaxNodeMs())});
    stream_results.emplace_back(streams, stats);
  }
  streams_table.Print();

  std::printf(
      "\nPaper's Table 3 (8-machine LAN, hot data; reference only):\n"
      "  Sequential 23.1ms; 8 servers 11.26ms (node min/avg/max "
      "5.50/6.39/11.00)\n"
      "  servers 4/2/1: 9.21/7.30/7.41ms\n"
      "  streams 1/2/4/8 (amortized): 11.26/4.86/3.64/3.26ms\n");

  std::printf("\nshape checks:\n");
  std::printf("  load imbalance: slowest node %.2fx the fastest (paper: "
              "~2x)\n",
              eight_one_stream.MaxNodeMs() /
                  std::max(1e-9, eight_one_stream.MinNodeMs()));
  double amortized_1 = stream_results.front().second.AmortizedMs();
  double amortized_8 = stream_results.back().second.AmortizedMs();
  std::printf(
      "  concurrency scales throughput: amortized %.3f -> %.3f ms "
      "(%.2fx) while latency %.3f -> %.3f ms (%.2fx, sub-linear)\n",
      amortized_1, amortized_8, amortized_1 / amortized_8,
      stream_results.front().second.query_latency_ms.Mean(),
      stream_results.back().second.query_latency_ms.Mean(),
      stream_results.back().second.query_latency_ms.Mean() /
          std::max(1e-9,
                   stream_results.front().second.query_latency_ms.Mean()));
  std::printf(
      "  note: at bench scale per-query work is microseconds, so fixed "
      "dispatch overheads dominate the latency columns; run with "
      "X100IR_BENCH_SCALE=large for paper-like latency ratios.\n");
  return 0;
}

}  // namespace
}  // namespace x100ir

int main() { return x100ir::Run(); }
