// Micro-benchmarks (google-benchmark) for X100 primitives and the engine's
// ablation knobs: selection vectors vs compaction, composed expression vs
// fused BM25 kernel, merge-join galloping.
#include <benchmark/benchmark.h>

#include <memory>
#include <vector>

#include "common/rng.h"
#include "ir/bm25.h"
#include "vec/expression.h"
#include "vec/mem_source.h"
#include "vec/merge_join.h"
#include "vec/primitives.h"
#include "vec/scan.h"
#include "vec/select.h"

namespace x100ir::vec {
namespace {

std::vector<float> RandomFloats(size_t n, uint64_t seed) {
  Rng rng(seed);
  std::vector<float> v(n);
  for (auto& x : v) x = static_cast<float>(rng.NextDouble()) + 0.5f;
  return v;
}

std::vector<int32_t> RandomInts(size_t n, uint64_t bound, uint64_t seed) {
  Rng rng(seed);
  std::vector<int32_t> v(n);
  for (auto& x : v) x = static_cast<int32_t>(rng.NextBounded(bound)) + 1;
  return v;
}

// map_add_f32_col_f32_col throughput at varying vector sizes: the
// function-call amortization argument of §2 in one picture.
void BM_MapAddF32(benchmark::State& state) {
  const auto vector_size = static_cast<uint32_t>(state.range(0));
  auto a = RandomFloats(vector_size, 1);
  auto b = RandomFloats(vector_size, 2);
  std::vector<float> res(vector_size);
  for (auto _ : state) {
    MapColCol<AddOp, float, float, float>(vector_size, nullptr, 0, res.data(),
                                          a.data(), b.data());
    benchmark::DoNotOptimize(res.data());
  }
  state.SetItemsProcessed(state.iterations() * vector_size);
}
BENCHMARK(BM_MapAddF32)->RangeMultiplier(8)->Range(8, 64 << 10);

// Selection-vector evaluation vs dense: cost of sparse iteration.
void BM_MapMulSelected(benchmark::State& state) {
  const uint32_t n = 4096;
  const auto selectivity_pct = static_cast<uint32_t>(state.range(0));
  auto a = RandomFloats(n, 3);
  std::vector<float> res(n);
  Rng rng(9);
  std::vector<sel_t> sel;
  for (uint32_t i = 0; i < n; ++i) {
    if (rng.NextBounded(100) < selectivity_pct) sel.push_back(i);
  }
  for (auto _ : state) {
    MapColVal<MulOp, float, float, float>(
        n, sel.data(), static_cast<uint32_t>(sel.size()), res.data(),
        a.data(), 2.0f);
    benchmark::DoNotOptimize(res.data());
  }
  state.SetItemsProcessed(state.iterations() * sel.size());
}
BENCHMARK(BM_MapMulSelected)->Arg(1)->Arg(10)->Arg(50)->Arg(100);

// select_* primitive: branch-free qualifying-position emission.
void BM_SelectGtI32(benchmark::State& state) {
  const uint32_t n = 4096;
  auto a = RandomInts(n, 1000, 5);
  std::vector<sel_t> out(n);
  const auto threshold = static_cast<int32_t>(state.range(0));
  for (auto _ : state) {
    uint32_t cnt = SelectColVal<GtCmp, int32_t>(n, nullptr, 0, out.data(),
                                                a.data(), threshold);
    benchmark::DoNotOptimize(cnt);
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_SelectGtI32)->Arg(100)->Arg(500)->Arg(900);

// Ablation: Select with selection vector (zero copy) vs compaction.
void BM_SelectOperatorModes(benchmark::State& state) {
  const bool compact = state.range(0) == 1;
  const uint32_t rows = 256 * 1024;
  auto keys = RandomInts(rows, 1000, 7);
  ExecContext ctx;
  for (auto _ : state) {
    Schema schema;
    schema.Add("k", TypeId::kI32);
    std::vector<VectorSourcePtr> sources;
    sources.push_back(std::make_unique<MemVectorSource<int32_t>>(keys));
    auto scan = std::make_unique<ScanOperator>(&ctx, std::move(schema),
                                               std::move(sources));
    auto pred = Expr::Call("lt", {Expr::Col("k"), Expr::ConstI32(500)});
    SelectOperator select(&ctx, std::move(scan), pred,
                          compact ? SelectMode::kCompact
                                  : SelectMode::kSelectionVector);
    select.Open();
    uint64_t live = 0;
    Batch* b = nullptr;
    while (select.Next(&b).ok() && b != nullptr) live += b->ActiveCount();
    select.Close();
    benchmark::DoNotOptimize(live);
  }
  state.SetItemsProcessed(state.iterations() * rows);
  state.SetLabel(compact ? "compact" : "selection-vector");
}
BENCHMARK(BM_SelectOperatorModes)->Arg(0)->Arg(1);

// Ablation: composed BM25 expression (5 primitives/term) vs the fused
// map_bm25 kernel — the flexibility-vs-speed trade-off of the relational
// formulation.
void BM_Bm25ComposedVsFused(benchmark::State& state) {
  const bool fused = state.range(0) == 1;
  const uint32_t n = 4096;
  auto tf = RandomInts(n, 20, 11);
  auto doclen = RandomInts(n, 500, 13);
  std::vector<float> out(n);

  Schema schema;
  schema.Add("tf0", TypeId::kI32);
  schema.Add("doclen", TypeId::kI32);
  Vector tf_vec(TypeId::kI32, n), len_vec(TypeId::kI32, n);
  tf_vec.Fill(tf.data(), n);
  len_vec.Fill(doclen.data(), n);
  Batch batch;
  batch.count = n;
  batch.columns = {&tf_vec, &len_vec};

  const float idf = 2.1f, k1 = 1.2f, b = 0.75f, avgdl = 150.0f;
  std::unique_ptr<CompiledExpr> compiled;
  if (!fused) {
    auto tf_f = Expr::Call("cast_f32", {Expr::Col("tf0")});
    auto len_f = Expr::Call("cast_f32", {Expr::Col("doclen")});
    auto norm = Expr::Call(
        "add", {Expr::ConstF32(k1 * (1 - b)),
                Expr::Call("mul", {Expr::ConstF32(k1 * b / avgdl), len_f})});
    auto w = Expr::Call(
        "mul", {Expr::ConstF32(idf * (k1 + 1)),
                Expr::Call("div", {tf_f, Expr::Call("add", {tf_f, norm})})});
    auto compiled_or = CompiledExpr::Compile(w, schema, n);
    compiled = std::move(compiled_or.value());
  }
  for (auto _ : state) {
    if (fused) {
      MapBm25(n, out.data(), tf.data(), doclen.data(), idf, k1, b,
              1.0f / avgdl);
      benchmark::DoNotOptimize(out.data());
    } else {
      const Vector* result = nullptr;
      compiled->Eval(batch, &result);
      benchmark::DoNotOptimize(result);
    }
  }
  state.SetItemsProcessed(state.iterations() * n);
  state.SetLabel(fused ? "fused map_bm25" : "composed primitives");
}
BENCHMARK(BM_Bm25ComposedVsFused)->Arg(0)->Arg(1);

// Merge-intersect of a short and a long posting list: galloping skips.
void BM_MergeIntersectSkewed(benchmark::State& state) {
  const auto ratio = static_cast<uint32_t>(state.range(0));
  const uint32_t long_n = 1 << 20;
  std::vector<int32_t> long_list(long_n), long_payload(long_n, 1);
  for (uint32_t i = 0; i < long_n; ++i) {
    long_list[i] = static_cast<int32_t>(i);
  }
  std::vector<int32_t> short_list, short_payload;
  for (uint32_t i = 0; i < long_n; i += ratio) {
    short_list.push_back(static_cast<int32_t>(i));
    short_payload.push_back(1);
  }
  ExecContext ctx;
  for (auto _ : state) {
    auto mk = [&](const std::vector<int32_t>& keys,
                  const std::vector<int32_t>& payload, const char* name) {
      Schema schema;
      schema.Add("docid", TypeId::kI32);
      schema.Add(name, TypeId::kI32);
      std::vector<VectorSourcePtr> sources;
      sources.push_back(std::make_unique<MemVectorSource<int32_t>>(keys));
      sources.push_back(std::make_unique<MemVectorSource<int32_t>>(payload));
      return std::make_unique<ScanOperator>(&ctx, std::move(schema),
                                            std::move(sources));
    };
    std::vector<OperatorPtr> children;
    children.push_back(mk(short_list, short_payload, "a"));
    children.push_back(mk(long_list, long_payload, "b"));
    MergeJoinOperator join(&ctx, std::move(children), MergeMode::kIntersect);
    join.Open();
    uint64_t rows = 0;
    Batch* b = nullptr;
    while (join.Next(&b).ok() && b != nullptr) rows += b->count;
    join.Close();
    benchmark::DoNotOptimize(rows);
  }
  state.SetItemsProcessed(state.iterations() * long_n);
}
BENCHMARK(BM_MergeIntersectSkewed)->Arg(1)->Arg(16)->Arg(256);

}  // namespace
}  // namespace x100ir::vec

BENCHMARK_MAIN();
