// Concurrent query service bench (DESIGN.md §9): two experiments over the
// shared bench collection.
//
//   1. Scaling sweep — QPS and p50/p99 latency vs worker count, for a
//      CPU-bound in-memory workload (kBm25 MaxScore) and a buffer-pool
//      workload (warm kBm25TCMQ8, exercising the lock-striped pool). The
//      headline acceptance gate (>= 3x QPS from 1 -> 8 workers) is
//      hardware-gated: it only applies when the host actually has >= 8
//      cores ("GATE cores" reports what the run saw).
//
//   2. Fault soak — thousands of queries through the full service stack
//      with a 5% transient-fault + latency-spike plan armed and a pool far
//      smaller than the working set. Gated invariants: every query ends in
//      one of the four contract outcomes (OK / DeadlineExceeded /
//      ResourceExhausted / Unavailable), zero unclassified statuses, and
//      every OK result is bit-identical to the fault-free serial oracle.
//
// Absolute QPS is runner-dependent and recorded (stdout +
// X100IR_BENCH_JSON), never gated; the gated numbers are counters and
// ratios.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "common/string_util.h"
#include "common/table_printer.h"
#include "ir/query_gen.h"
#include "ir/search_engine.h"
#include "server/query_service.h"
#include "storage/fault_injection.h"

namespace x100ir {
namespace {

using Clock = std::chrono::steady_clock;

double SecondsSince(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

double Percentile(std::vector<double> v, double p) {
  if (v.empty()) return 0.0;
  std::sort(v.begin(), v.end());
  const size_t idx = static_cast<size_t>(p * static_cast<double>(v.size()));
  return v[std::min(idx, v.size() - 1)];
}

struct SweepRow {
  uint32_t threads = 0;
  double qps = 0.0;
  double p50_ms = 0.0;
  double p99_ms = 0.0;
  uint64_t errors = 0;
};

// Pushes `num_queries` requests through a fresh service with `threads`
// workers, with submit-side backpressure (a shed request is re-submitted,
// so every query runs and the measured QPS is the service's, not the
// submit loop's).
SweepRow MeasureWorkload(const core::Database& db,
                         const std::vector<ir::Query>& queries,
                         ir::RunType run, uint32_t threads,
                         uint32_t num_queries) {
  server::QueryServiceOptions sopts;
  sopts.num_threads = threads;
  sopts.max_pending = 4 * threads + 8;  // keep workers fed, queue shallow
  server::QueryService service;
  bench::CheckOk(service.Start(&db, sopts), "start service");

  std::vector<double> lat(num_queries, 0.0);
  std::atomic<uint64_t> errors{0};
  const Clock::time_point t0 = Clock::now();
  for (uint32_t i = 0; i < num_queries; ++i) {
    server::QueryRequest req;
    req.query = queries[i % queries.size()];
    req.run = run;
    const Clock::time_point qstart = Clock::now();
    for (;;) {
      Status admitted =
          service.Submit(req, [&lat, &errors, i, qstart](
                                  server::QueryResponse resp) {
            lat[i] = SecondsSince(qstart);
            if (!resp.status.ok()) errors.fetch_add(1);
          });
      if (admitted.ok()) break;
      if (admitted.code() != StatusCode::kResourceExhausted) {
        errors.fetch_add(1);
        break;
      }
      std::this_thread::yield();
    }
  }
  service.Drain();
  const double wall = SecondsSince(t0);
  service.Stop();

  SweepRow row;
  row.threads = threads;
  row.qps = static_cast<double>(num_queries) / wall;
  row.p50_ms = Percentile(lat, 0.50) * 1e3;
  row.p99_ms = Percentile(lat, 0.99) * 1e3;
  row.errors = errors.load();
  return row;
}

struct SoakResult {
  uint64_t total = 0;
  uint64_t ok = 0;
  uint64_t deadline_exceeded = 0;
  uint64_t unavailable = 0;
  uint64_t shed_attempts = 0;
  uint64_t bad_status = 0;   // statuses outside the four-outcome contract
  uint64_t mismatches = 0;   // OK results that differ from the oracle
  uint64_t faults_injected = 0;
  uint64_t service_retries = 0;
  double wall_seconds = 0.0;
  // Execution counters summed (ExecStats::operator+=) over every OK
  // response — the soak's aggregate work profile, fault retries included.
  vec::ExecStats exec;
};

SoakResult RunFaultSoak(const core::Database& db,
                        const std::vector<ir::Query>& queries,
                        uint32_t num_queries) {
  // Fault-free serial oracle first (kBm25TCMQ8: identity under the
  // degradation remap, so the ladder cannot make OK results incomparable).
  ir::SearchOptions plain;
  std::vector<ir::SearchResult> oracle(queries.size());
  for (size_t i = 0; i < queries.size(); ++i) {
    bench::CheckOk(
        db.Search(queries[i], ir::RunType::kBm25TCMQ8, plain, &oracle[i]),
        "oracle search");
  }

  storage::FaultPlanOptions fopts;
  fopts.seed = 0xC1D12007;
  fopts.transient_rate = 0.05;
  fopts.latency_spike_rate = 0.01;
  storage::FaultPlan plan(fopts);
  db.index()->buffer_manager()->set_fault_plan(&plan);

  server::QueryServiceOptions sopts;
  sopts.num_threads = 4;
  sopts.max_pending = 64;
  sopts.retry_budget = 1;
  sopts.retry_backoff_seconds = 1e-4;
  server::QueryService service;
  bench::CheckOk(service.Start(&db, sopts), "start soak service");

  SoakResult r;
  r.total = num_queries;
  std::atomic<uint64_t> ok{0}, deadline{0}, unavailable{0}, bad{0},
      mismatches{0};
  std::mutex exec_mu;  // ExecStats has no atomic fields; callbacks race
  const Clock::time_point t0 = Clock::now();
  for (uint32_t i = 0; i < num_queries; ++i) {
    const size_t qi = i % queries.size();
    server::QueryRequest req;
    req.query = queries[qi];
    req.run = ir::RunType::kBm25TCMQ8;
    // Every 64th query carries a microscopic deadline so the
    // DeadlineExceeded leg of the contract is exercised in-soak.
    if (i % 64 == 63) req.deadline_seconds = 1e-6;
    for (;;) {
      Status admitted = service.Submit(
          req, [&, qi](server::QueryResponse resp) {
            switch (resp.status.code()) {
              case StatusCode::kOk:
                ok.fetch_add(1);
                if (resp.result.docids != oracle[qi].docids ||
                    resp.result.scores != oracle[qi].scores) {
                  mismatches.fetch_add(1);
                }
                {
                  std::lock_guard<std::mutex> lock(exec_mu);
                  r.exec += resp.result.stats;
                }
                break;
              case StatusCode::kDeadlineExceeded:
                deadline.fetch_add(1);
                break;
              case StatusCode::kUnavailable:
                unavailable.fetch_add(1);
                break;
              default:
                bad.fetch_add(1);
                break;
            }
          });
      if (admitted.ok()) break;
      if (admitted.code() == StatusCode::kResourceExhausted) {
        ++r.shed_attempts;
        std::this_thread::yield();
        continue;
      }
      if (admitted.code() == StatusCode::kUnavailable) {
        unavailable.fetch_add(1);  // ladder refusal: a contract outcome
        break;
      }
      bad.fetch_add(1);
      break;
    }
  }
  service.Drain();
  r.wall_seconds = SecondsSince(t0);
  const server::ServiceStats stats = service.stats();
  service.Stop();
  db.index()->buffer_manager()->set_fault_plan(nullptr);

  r.ok = ok.load();
  r.deadline_exceeded = deadline.load();
  r.unavailable = unavailable.load();
  r.bad_status = bad.load();
  r.mismatches = mismatches.load();
  r.faults_injected = plan.transient_injected() + plan.spikes_injected();
  r.service_retries = stats.retries;
  return r;
}

int Run() {
  std::printf("=== Concurrent query service: scaling + fault soak ===\n\n");

  const uint32_t cores = std::max(1u, std::thread::hardware_concurrency());
  const bool tiny = bench::Scale() == bench::BenchScale::kTiny;
  const uint32_t sweep_queries = tiny ? 400 : 2000;
  const uint32_t soak_queries = tiny ? 2000 : 10000;

  // Thread counts 1 -> 2x cores (doubling), capped at 16.
  std::vector<uint32_t> counts;
  for (uint32_t t = 1; t <= std::min(2 * cores, 16u); t *= 2) {
    counts.push_back(t);
  }

  // Shared bench index; 8 pool stripes so the pool is never the
  // scalability bottleneck under the sweep's worker counts.
  core::DatabaseOptions dopts;
  dopts.dir = bench::BenchDir() + "/full";
  dopts.corpus = bench::BenchCorpusOptions();
  dopts.storage = bench::BenchStorageOptions();
  dopts.storage.shards = 8;
  core::Database db;
  bench::CheckOk(db.Open(dopts), "open database");

  ir::QueryGenOptions qopts = bench::BenchQueryOptions();
  qopts.num_efficiency_queries = std::min(qopts.num_efficiency_queries, 200u);
  ir::QueryGenerator gen(db.corpus(), qopts);
  const std::vector<ir::Query> queries = gen.EfficiencyQueries();

  // Warm the pool once so the storage sweep measures the striped pool's
  // hit path, not first-touch disk charges.
  {
    ir::SearchOptions sopts;
    ir::SearchResult result;
    for (const auto& q : queries) {
      bench::CheckOk(db.Search(q, ir::RunType::kBm25TCMQ8, sopts, &result),
                     "warmup");
    }
  }

  std::printf("-- scaling sweep (%u queries per point, %u cores) --\n",
              sweep_queries, cores);
  TablePrinter sweep_table({"workload", "threads", "QPS", "p50 (ms)",
                            "p99 (ms)", "errors"});
  std::vector<SweepRow> cpu_rows, pool_rows;
  uint64_t sweep_errors = 0;
  for (uint32_t t : counts) {
    SweepRow row =
        MeasureWorkload(db, queries, ir::RunType::kBm25, t, sweep_queries);
    sweep_table.AddRow({"bm25 (in-memory)", StrFormat("%u", t),
                        StrFormat("%.0f", row.qps),
                        StrFormat("%.3f", row.p50_ms),
                        StrFormat("%.3f", row.p99_ms),
                        StrFormat("%llu",
                                  static_cast<unsigned long long>(
                                      row.errors))});
    sweep_errors += row.errors;
    cpu_rows.push_back(row);
  }
  for (uint32_t t : counts) {
    SweepRow row = MeasureWorkload(db, queries, ir::RunType::kBm25TCMQ8, t,
                                   sweep_queries);
    sweep_table.AddRow({"bm25tcmq8 (warm pool)", StrFormat("%u", t),
                        StrFormat("%.0f", row.qps),
                        StrFormat("%.3f", row.p50_ms),
                        StrFormat("%.3f", row.p99_ms),
                        StrFormat("%llu",
                                  static_cast<unsigned long long>(
                                      row.errors))});
    sweep_errors += row.errors;
    pool_rows.push_back(row);
  }
  sweep_table.Print();

  double scale_8t = 0.0;
  for (const SweepRow& row : cpu_rows) {
    if (row.threads == 8) scale_8t = row.qps / cpu_rows[0].qps;
  }
  double scale_best = 0.0;
  for (const SweepRow& row : cpu_rows) {
    scale_best = std::max(scale_best, row.qps / cpu_rows[0].qps);
  }
  std::printf(
      "shape: the read path is shared-nothing per query (immutable index, "
      "striped pool), so QPS should track workers until cores saturate.\n\n");

  // -- Fault soak over a pool far smaller than the working set ------------
  // 24 pages is far below the soak workload's touched page set at every
  // scale, so misses (and fault draws) never dry up; 4 shards keep the
  // per-shard budget (6 pages) above the worst-case concurrent pin count
  // (4 workers x 1 pinned page), so the pool can always evict.
  core::DatabaseOptions soak_opts = dopts;
  soak_opts.storage.pool_bytes = 24ull * soak_opts.storage.page_bytes;
  soak_opts.storage.shards = 4;
  soak_opts.storage.retry.budget = 3;
  core::Database soak_db;
  bench::CheckOk(soak_db.Open(soak_opts), "open soak database");
  std::printf(
      "-- fault soak: %u queries, 5%% transient + 1%% latency spikes, "
      "24-page pool --\n",
      soak_queries);
  const SoakResult soak = RunFaultSoak(soak_db, queries, soak_queries);
  TablePrinter soak_table({"outcome", "count"});
  soak_table.AddRow({"OK (bit-identical)",
                     StrFormat("%llu", static_cast<unsigned long long>(
                                           soak.ok))});
  soak_table.AddRow(
      {"DeadlineExceeded",
       StrFormat("%llu",
                 static_cast<unsigned long long>(soak.deadline_exceeded))});
  soak_table.AddRow({"Unavailable",
                     StrFormat("%llu", static_cast<unsigned long long>(
                                           soak.unavailable))});
  soak_table.AddRow(
      {"shed attempts (resubmitted)",
       StrFormat("%llu",
                 static_cast<unsigned long long>(soak.shed_attempts))});
  soak_table.AddRow({"unclassified",
                     StrFormat("%llu", static_cast<unsigned long long>(
                                           soak.bad_status))});
  soak_table.AddRow({"OK-vs-oracle mismatches",
                     StrFormat("%llu", static_cast<unsigned long long>(
                                           soak.mismatches))});
  soak_table.Print();
  std::printf(
      "faults injected: %llu, service-level retries: %llu, soak QPS: "
      "%.0f\n",
      static_cast<unsigned long long>(soak.faults_injected),
      static_cast<unsigned long long>(soak.service_retries),
      static_cast<double>(soak.total) / soak.wall_seconds);
  std::printf(
      "aggregate work over OK responses (ExecStats): %llu windows decoded, "
      "%llu skipped, %llu tf windows, %llu primitive calls, %llu vectors "
      "pruned, %llu docs probed\n\n",
      static_cast<unsigned long long>(soak.exec.windows_decoded),
      static_cast<unsigned long long>(soak.exec.windows_skipped),
      static_cast<unsigned long long>(soak.exec.tf_windows_decoded),
      static_cast<unsigned long long>(soak.exec.primitive_calls),
      static_cast<unsigned long long>(soak.exec.vectors_pruned),
      static_cast<unsigned long long>(soak.exec.docs_probed));

  // -- Gates --------------------------------------------------------------
  // scale_gated flags whether the 3x acceptance gate applies on this host
  // (it needs >= 8 real cores and the 8-worker sweep point).
  std::printf("GATE cores %u\n", cores);
  std::printf("GATE scale_gated %d\n", (cores >= 8 && scale_8t > 0.0) ? 1 : 0);
  std::printf("GATE qps_scale_8t %.3f\n", scale_8t);
  std::printf("GATE qps_scale_best %.3f\n", scale_best);
  std::printf("GATE sweep_errors %llu\n",
              static_cast<unsigned long long>(sweep_errors));
  std::printf("GATE soak_total %llu\n",
              static_cast<unsigned long long>(soak.total));
  std::printf("GATE soak_ok %llu\n",
              static_cast<unsigned long long>(soak.ok));
  std::printf("GATE soak_classified %llu\n",
              static_cast<unsigned long long>(
                  soak.ok + soak.deadline_exceeded + soak.unavailable));
  std::printf("GATE soak_bad_status %llu\n",
              static_cast<unsigned long long>(soak.bad_status));
  std::printf("GATE soak_mismatches %llu\n",
              static_cast<unsigned long long>(soak.mismatches));
  std::printf("GATE soak_faults_injected %llu\n",
              static_cast<unsigned long long>(soak.faults_injected));

  const char* json_path = std::getenv("X100IR_BENCH_JSON");
  if (json_path != nullptr) {
    std::FILE* f = std::fopen(json_path, "w");
    bench::CheckOk(f != nullptr ? OkStatus() : IOError("cannot write json"),
                   "open json");
    std::fprintf(
        f,
        "{\n"
        "  \"comment\": \"Concurrent query service: QPS/p50/p99 vs worker "
        "count (in-memory BM25 and warm-pool BM25TCMQ8), plus a fault soak "
        "(5%% transient + 1%% latency spikes, 24-page pool). Absolute QPS "
        "is host-dependent; the gated values are the outcome counters.\",\n"
        "  \"command\": \"X100IR_BENCH_JSON=BENCH_concurrency.json "
        "./build/bench_concurrency\",\n"
        "  \"cores\": %u,\n"
        "  \"scaling\": [\n",
        cores);
    const auto emit_rows = [f](const char* name,
                               const std::vector<SweepRow>& rows,
                               bool last_group) {
      for (size_t i = 0; i < rows.size(); ++i) {
        const SweepRow& r = rows[i];
        const bool last = last_group && i + 1 == rows.size();
        std::fprintf(f,
                     "    {\"workload\": \"%s\", \"threads\": %u, \"qps\": "
                     "%.1f, \"p50_ms\": %.4f, \"p99_ms\": %.4f}%s\n",
                     name, r.threads, r.qps, r.p50_ms, r.p99_ms,
                     last ? "" : ",");
      }
    };
    emit_rows("bm25_inmemory", cpu_rows, false);
    emit_rows("bm25tcmq8_warm_pool", pool_rows, true);
    std::fprintf(
        f,
        "  ],\n"
        "  \"soak\": {\"total\": %llu, \"ok\": %llu, "
        "\"deadline_exceeded\": %llu, \"unavailable\": %llu, "
        "\"shed_attempts\": %llu, \"unclassified\": %llu, "
        "\"ok_vs_oracle_mismatches\": %llu, \"faults_injected\": %llu, "
        "\"service_retries\": %llu, \"wall_seconds\": %.2f,\n"
        "    \"exec_ok_responses\": {\"windows_decoded\": %llu, "
        "\"windows_skipped\": %llu, \"tf_windows_decoded\": %llu, "
        "\"primitive_calls\": %llu, \"vectors_pruned\": %llu, "
        "\"docs_probed\": %llu}}\n"
        "}\n",
        static_cast<unsigned long long>(soak.total),
        static_cast<unsigned long long>(soak.ok),
        static_cast<unsigned long long>(soak.deadline_exceeded),
        static_cast<unsigned long long>(soak.unavailable),
        static_cast<unsigned long long>(soak.shed_attempts),
        static_cast<unsigned long long>(soak.bad_status),
        static_cast<unsigned long long>(soak.mismatches),
        static_cast<unsigned long long>(soak.faults_injected),
        static_cast<unsigned long long>(soak.service_retries),
        soak.wall_seconds,
        static_cast<unsigned long long>(soak.exec.windows_decoded),
        static_cast<unsigned long long>(soak.exec.windows_skipped),
        static_cast<unsigned long long>(soak.exec.tf_windows_decoded),
        static_cast<unsigned long long>(soak.exec.primitive_calls),
        static_cast<unsigned long long>(soak.exec.vectors_pruned),
        static_cast<unsigned long long>(soak.exec.docs_probed));
    std::fclose(f);
    std::fprintf(stderr, "[bench] wrote %s\n", json_path);
  }

  // Hard in-binary failures (mirrored by CI's awk gate): the soak contract
  // does not depend on the host, so violations fail even locally.
  if (soak.bad_status != 0 || soak.mismatches != 0 ||
      soak.ok + soak.deadline_exceeded + soak.unavailable != soak.total) {
    std::fprintf(stderr, "FAIL: soak contract violated\n");
    return 1;
  }
  if (soak.faults_injected == 0) {
    std::fprintf(stderr, "FAIL: fault plan never fired\n");
    return 1;
  }
  if (sweep_errors != 0) {
    std::fprintf(stderr, "FAIL: fault-free sweep saw query errors\n");
    return 1;
  }
  if (cores >= 8 && scale_8t > 0.0 && scale_8t < 3.0) {
    std::fprintf(stderr,
                 "FAIL: QPS scaled only %.2fx from 1 -> 8 workers on a "
                 "%u-core host\n",
                 scale_8t, cores);
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace x100ir

int main() { return x100ir::Run(); }
