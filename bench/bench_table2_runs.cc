// Reproduces Table 2: "MonetDB/X100 TREC-TB Experiments" — the seven run
// configurations (BoolAND, BoolOR, BM25, +Two-pass, +Compression,
// +Materialization, +Quant.8-bit) with early precision (p@20 over the 50
// judged queries) and average query time on cold and hot data.
//
// Substitutions vs. the paper (DESIGN.md §3): synthetic GOV2 stand-in,
// scaled-down query batch, disk I/O charged by ColumnBM's deterministic
// cost model (cold = empty buffer pool per query; hot = fully warmed pool).
// Absolute times differ from the paper's hardware; the row ordering and the
// effect of each optimization are the reproduced result.
#include <cstdio>
#include <cstdlib>
#include <map>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "common/string_util.h"
#include "common/table_printer.h"
#include "common/timer.h"
#include "ir/index_meta.h"
#include "ir/metrics.h"
#include "ir/query_gen.h"
#include "ir/search_engine.h"
#include "storage/file.h"

namespace x100ir {
namespace {

struct RunRow {
  double p20 = 0.0;
  double cold_ms = 0.0;
  double hot_ms = 0.0;
  double second_pass_pct = 0.0;
  double cold_seeks = 0.0;     // simulated I/O requests per cold query
  double cold_kb = 0.0;        // simulated bytes fetched per cold query
};

uint64_t FileBytes(const std::string& path) {
  storage::File f;
  uint64_t size = 0;
  bench::CheckOk(storage::File::OpenReadOnly(path, &f), "open column file");
  bench::CheckOk(f.Size(&size), "size column file");
  return size;
}

int Run() {
  std::printf("=== Table 2: MonetDB/X100 TREC-TB experiments ===\n\n");
  core::Database db;
  bench::CheckOk(bench::OpenBenchDatabase(&db), "open database");

  ir::QueryGenOptions qopts = bench::BenchQueryOptions();
  ir::QueryGenerator gen(db.corpus(), qopts);
  ir::Qrels qrels(db.corpus());
  auto eval_queries = gen.EvalQueries();
  auto efficiency_queries = gen.EfficiencyQueries();
  // Cold runs evict the pool per query; use a subsample to bound runtime.
  size_t cold_n = std::min<size_t>(efficiency_queries.size(), 300);

  double mean_terms = 0;
  for (const auto& q : efficiency_queries) {
    mean_terms += static_cast<double>(q.terms.size());
  }
  mean_terms /= static_cast<double>(efficiency_queries.size());
  std::printf(
      "query batch: %zu efficiency queries (%.2f terms avg; paper: 2.3), "
      "%zu judged queries\n\n",
      efficiency_queries.size(), mean_terms, eval_queries.size());

  std::map<ir::RunType, RunRow> rows;
  for (ir::RunType type : ir::AllRunTypes()) {
    RunRow row;
    ir::SearchOptions opts;
    ir::SearchResult result;

    // Effectiveness: p@20 over the judged queries (hot).
    std::vector<double> p20s;
    for (const auto& q : eval_queries) {
      bench::CheckOk(db.Search(q, type, opts, &result), "search");
      std::vector<int32_t> ranked = result.docids;
      p20s.push_back(ir::PrecisionAtK(ranked, 20, qrels, q.topic));
    }
    row.p20 = ir::Mean(p20s);

    // Cold: empty buffer pool before every query.
    double cold_total = 0.0;
    const bool has_disk = db.disk() != nullptr;
    const uint64_t seeks_before = has_disk ? db.disk()->seeks() : 0;
    const uint64_t bytes_before = has_disk ? db.disk()->total_bytes() : 0;
    for (size_t i = 0; i < cold_n; ++i) {
      // Per-run cold reset: chill only the columns this run reads, so a
      // row's cold cost reflects its own I/O, not refetches of files the
      // previous row's global eviction threw out.
      bench::CheckOk(bench::EvictRunColumns(db, type), "evict");
      bench::CheckOk(db.Search(efficiency_queries[i], type, opts, &result),
                     "search");
      cold_total += result.TotalSeconds();
    }
    row.cold_ms = cold_total * 1e3 / static_cast<double>(cold_n);
    if (has_disk) {
      row.cold_seeks =
          static_cast<double>(db.disk()->seeks() - seeks_before) /
          static_cast<double>(cold_n);
      row.cold_kb =
          static_cast<double>(db.disk()->total_bytes() - bytes_before) /
          1024.0 / static_cast<double>(cold_n);
    }

    // Hot: warm once, then measure the full batch.
    for (const auto& q : efficiency_queries) {
      bench::CheckOk(db.Search(q, type, opts, &result), "warm");
    }
    double hot_total = 0.0;
    uint64_t second_pass = 0;
    for (const auto& q : efficiency_queries) {
      bench::CheckOk(db.Search(q, type, opts, &result), "search");
      hot_total += result.TotalSeconds();
      second_pass += result.used_second_pass ? 1 : 0;
    }
    row.hot_ms =
        hot_total * 1e3 / static_cast<double>(efficiency_queries.size());
    row.second_pass_pct = 100.0 * static_cast<double>(second_pass) /
                          static_cast<double>(efficiency_queries.size());
    rows[type] = row;
    std::fprintf(stderr, "[bench] %-10s done\n", RunTypeName(type));
  }

  TablePrinter table({"Run name (+ added feature)", "p@20",
                      "cold avg (ms)", "hot avg (ms)", "2nd pass (%)",
                      "I/O req/q", "I/O KB/q"});
  const char* features[] = {"",
                            "",
                            "",
                            " (+Two-pass)",
                            " (+Compression)",
                            " (+Materialization)",
                            " (+Quant.8-bit)"};
  size_t fi = 0;
  for (ir::RunType type : ir::AllRunTypes()) {
    const RunRow& r = rows[type];
    table.AddRow({std::string(RunTypeName(type)) + features[fi++],
                  StrFormat("%.4f", r.p20), StrFormat("%.3f", r.cold_ms),
                  StrFormat("%.3f", r.hot_ms),
                  StrFormat("%.1f", r.second_pass_pct),
                  StrFormat("%.1f", r.cold_seeks),
                  StrFormat("%.1f", r.cold_kb)});
  }
  table.Print();

  std::printf(
      "\nPaper's Table 2 (GOV2, 426GB, 3GHz Xeon, 12-disk RAID; reference "
      "only):\n"
      "  BoolAND    0.0130  cold  76ms  hot  12ms\n"
      "  BoolOR     0.0000  cold 133ms  hot  80ms\n"
      "  BM25       0.5460  cold 440ms  hot 342ms\n"
      "  BM25T      0.5470  cold 198ms  hot  72ms   (~15%% needed a 2nd "
      "pass)\n"
      "  BM25TC     0.5470  cold 158ms  hot  73ms\n"
      "  BM25TCM    0.5470  cold 155ms  hot  29ms\n"
      "  BM25TCMQ8  0.5490  cold 118ms  hot  28ms\n");

  // On-disk score-column footprint: quantization is the cheapest way to
  // store materialized scores (the paper's Quant.8-bit row).
  const std::string dir = bench::BenchDir() + "/full";
  const uint64_t f32_bytes = FileBytes(dir + "/" + ir::kScoreF32File);
  const uint64_t q8_bytes = FileBytes(dir + "/" + ir::kScoreQ8File);
  std::printf("\nscore column footprint: f32 %s, q8 %s (%.2fx)\n",
              HumanBytes(f32_bytes).c_str(), HumanBytes(q8_bytes).c_str(),
              static_cast<double>(f32_bytes) /
                  static_cast<double>(q8_bytes));

  // Shape summary against the paper's claims.
  std::printf("\nshape checks:\n");
  std::printf("  boolean precision collapses:    BoolAND p@20 %.3f, BoolOR "
              "%.3f vs BM25 %.3f\n",
              rows[ir::RunType::kBoolAnd].p20, rows[ir::RunType::kBoolOr].p20,
              rows[ir::RunType::kBm25].p20);
  std::printf("  two-pass cuts hot time:         %.3f -> %.3f ms (%.1fx)\n",
              rows[ir::RunType::kBm25].hot_ms,
              rows[ir::RunType::kBm25T].hot_ms,
              rows[ir::RunType::kBm25].hot_ms /
                  rows[ir::RunType::kBm25T].hot_ms);
  std::printf("  compression cuts cold time:     %.3f -> %.3f ms\n",
              rows[ir::RunType::kBm25T].cold_ms,
              rows[ir::RunType::kBm25TC].cold_ms);
  std::printf("  materialization cuts hot time:  %.3f -> %.3f ms (cold may "
              "regress: f32 scores are bigger than compressed tf)\n",
              rows[ir::RunType::kBm25TC].hot_ms,
              rows[ir::RunType::kBm25TCM].hot_ms);
  std::printf("  quantization recovers cold I/O: %.3f -> %.3f ms, p@20 "
              "unchanged (%.4f vs %.4f)\n",
              rows[ir::RunType::kBm25TCM].cold_ms,
              rows[ir::RunType::kBm25TCMQ8].cold_ms,
              rows[ir::RunType::kBm25TCM].p20,
              rows[ir::RunType::kBm25TCMQ8].p20);

  // Machine-readable gates for CI's bench-smoke job. Cold times are
  // dominated by the deterministic simulated disk, so these ratios are
  // runner-independent; hot wall-clock ratios are reported in the JSON but
  // never gated.
  const double tcm_vs_bm25t_cold = rows[ir::RunType::kBm25TCM].cold_ms /
                                   rows[ir::RunType::kBm25T].cold_ms;
  const double tcmq8_vs_tcm_cold = rows[ir::RunType::kBm25TCMQ8].cold_ms /
                                   rows[ir::RunType::kBm25TCM].cold_ms;
  const double q8_vs_f32_bytes =
      static_cast<double>(q8_bytes) / static_cast<double>(f32_bytes);
  std::printf("\nGATE tcm_vs_bm25t_cold %.4f\n", tcm_vs_bm25t_cold);
  std::printf("GATE tcmq8_vs_tcm_cold %.4f\n", tcmq8_vs_tcm_cold);
  std::printf("GATE q8_vs_f32_bytes %.4f\n", q8_vs_f32_bytes);

  const char* json_path = std::getenv("X100IR_BENCH_JSON");
  if (json_path != nullptr) {
    std::FILE* f = std::fopen(json_path, "w");
    bench::CheckOk(f != nullptr ? OkStatus() : IOError("cannot write json"),
                   "open json");
    std::fprintf(
        f,
        "{\n"
        "  \"comment\": \"Table 2 runs: p@20 + cold/hot avg per query; "
        "cold ms include the deterministic simulated-disk charge (2 ms "
        "seek, 200 MB/s), hot ms are wall-clock over a warm pool.\",\n"
        "  \"command\": \"X100IR_BENCH_JSON=BENCH_table2.json "
        "./build/bench_table2_runs\",\n"
        "  \"results\": [\n");
    for (ir::RunType type : ir::AllRunTypes()) {
      const RunRow& r = rows[type];
      std::fprintf(f,
                   "    {\"name\": \"%s\", \"p20\": %.4f, \"cold_ms\": "
                   "%.4f, \"hot_ms\": %.4f, \"second_pass_pct\": %.1f},\n",
                   RunTypeName(type), r.p20, r.cold_ms, r.hot_ms,
                   r.second_pass_pct);
    }
    std::fprintf(
        f,
        "    {\"name\": \"gates\", \"tcm_vs_bm25t_cold\": %.4f, "
        "\"tcmq8_vs_tcm_cold\": %.4f, \"q8_vs_f32_bytes\": %.4f, "
        "\"score_f32_bytes\": %llu, \"score_q8_bytes\": %llu}\n"
        "  ]\n"
        "}\n",
        tcm_vs_bm25t_cold, tcmq8_vs_tcm_cold, q8_vs_f32_bytes,
        static_cast<unsigned long long>(f32_bytes),
        static_cast<unsigned long long>(q8_bytes));
    std::fclose(f);
    std::fprintf(stderr, "[bench] wrote %s\n", json_path);
  }
  return 0;
}

}  // namespace
}  // namespace x100ir

int main() { return x100ir::Run(); }
