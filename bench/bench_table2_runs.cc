// Reproduces Table 2: "MonetDB/X100 TREC-TB Experiments" — the seven run
// configurations (BoolAND, BoolOR, BM25, +Two-pass, +Compression,
// +Materialization, +Quant.8-bit) with early precision (p@20 over the 50
// judged queries) and average query time on cold and hot data.
//
// Substitutions vs. the paper (DESIGN.md §3): synthetic GOV2 stand-in,
// scaled-down query batch, disk I/O charged by ColumnBM's deterministic
// cost model (cold = empty buffer pool per query; hot = fully warmed pool).
// Absolute times differ from the paper's hardware; the row ordering and the
// effect of each optimization are the reproduced result.
#include <cstdio>
#include <map>
#include <vector>

#include "bench/bench_util.h"
#include "common/string_util.h"
#include "common/table_printer.h"
#include "common/timer.h"
#include "ir/metrics.h"
#include "ir/query_gen.h"
#include "ir/search_engine.h"

namespace x100ir {
namespace {

struct RunRow {
  double p20 = 0.0;
  double cold_ms = 0.0;
  double hot_ms = 0.0;
  double second_pass_pct = 0.0;
};

int Run() {
  std::printf("=== Table 2: MonetDB/X100 TREC-TB experiments ===\n\n");
  core::Database db;
  bench::CheckOk(bench::OpenBenchDatabase(&db), "open database");

  ir::QueryGenOptions qopts = bench::BenchQueryOptions();
  ir::QueryGenerator gen(db.corpus(), qopts);
  ir::Qrels qrels(db.corpus());
  auto eval_queries = gen.EvalQueries();
  auto efficiency_queries = gen.EfficiencyQueries();
  // Cold runs evict the pool per query; use a subsample to bound runtime.
  size_t cold_n = std::min<size_t>(efficiency_queries.size(), 300);

  double mean_terms = 0;
  for (const auto& q : efficiency_queries) {
    mean_terms += static_cast<double>(q.terms.size());
  }
  mean_terms /= static_cast<double>(efficiency_queries.size());
  std::printf(
      "query batch: %zu efficiency queries (%.2f terms avg; paper: 2.3), "
      "%zu judged queries\n\n",
      efficiency_queries.size(), mean_terms, eval_queries.size());

  std::map<ir::RunType, RunRow> rows;
  for (ir::RunType type : ir::AllRunTypes()) {
    RunRow row;
    ir::SearchOptions opts;
    ir::SearchResult result;

    // Effectiveness: p@20 over the judged queries (hot).
    std::vector<double> p20s;
    for (const auto& q : eval_queries) {
      bench::CheckOk(db.Search(q, type, opts, &result), "search");
      std::vector<int32_t> ranked = result.docids;
      p20s.push_back(ir::PrecisionAtK(ranked, 20, qrels, q.topic));
    }
    row.p20 = ir::Mean(p20s);

    // Cold: empty buffer pool before every query.
    double cold_total = 0.0;
    for (size_t i = 0; i < cold_n; ++i) {
      bench::CheckOk(db.index()->EvictAll(), "evict");
      bench::CheckOk(db.Search(efficiency_queries[i], type, opts, &result),
                     "search");
      cold_total += result.TotalSeconds();
    }
    row.cold_ms = cold_total * 1e3 / static_cast<double>(cold_n);

    // Hot: warm once, then measure the full batch.
    for (const auto& q : efficiency_queries) {
      bench::CheckOk(db.Search(q, type, opts, &result), "warm");
    }
    double hot_total = 0.0;
    uint64_t second_pass = 0;
    for (const auto& q : efficiency_queries) {
      bench::CheckOk(db.Search(q, type, opts, &result), "search");
      hot_total += result.TotalSeconds();
      second_pass += result.used_second_pass ? 1 : 0;
    }
    row.hot_ms =
        hot_total * 1e3 / static_cast<double>(efficiency_queries.size());
    row.second_pass_pct = 100.0 * static_cast<double>(second_pass) /
                          static_cast<double>(efficiency_queries.size());
    rows[type] = row;
    std::fprintf(stderr, "[bench] %-10s done\n", RunTypeName(type));
  }

  TablePrinter table({"Run name (+ added feature)", "p@20",
                      "cold avg (ms)", "hot avg (ms)", "2nd pass (%)"});
  const char* features[] = {"",
                            "",
                            "",
                            " (+Two-pass)",
                            " (+Compression)",
                            " (+Materialization)",
                            " (+Quant.8-bit)"};
  size_t fi = 0;
  for (ir::RunType type : ir::AllRunTypes()) {
    const RunRow& r = rows[type];
    table.AddRow({std::string(RunTypeName(type)) + features[fi++],
                  StrFormat("%.4f", r.p20), StrFormat("%.3f", r.cold_ms),
                  StrFormat("%.3f", r.hot_ms),
                  StrFormat("%.1f", r.second_pass_pct)});
  }
  table.Print();

  std::printf(
      "\nPaper's Table 2 (GOV2, 426GB, 3GHz Xeon, 12-disk RAID; reference "
      "only):\n"
      "  BoolAND    0.0130  cold  76ms  hot  12ms\n"
      "  BoolOR     0.0000  cold 133ms  hot  80ms\n"
      "  BM25       0.5460  cold 440ms  hot 342ms\n"
      "  BM25T      0.5470  cold 198ms  hot  72ms   (~15%% needed a 2nd "
      "pass)\n"
      "  BM25TC     0.5470  cold 158ms  hot  73ms\n"
      "  BM25TCM    0.5470  cold 155ms  hot  29ms\n"
      "  BM25TCMQ8  0.5490  cold 118ms  hot  28ms\n");

  // Shape summary against the paper's claims.
  std::printf("\nshape checks:\n");
  std::printf("  boolean precision collapses:    BoolAND p@20 %.3f, BoolOR "
              "%.3f vs BM25 %.3f\n",
              rows[ir::RunType::kBoolAnd].p20, rows[ir::RunType::kBoolOr].p20,
              rows[ir::RunType::kBm25].p20);
  std::printf("  two-pass cuts hot time:         %.3f -> %.3f ms (%.1fx)\n",
              rows[ir::RunType::kBm25].hot_ms,
              rows[ir::RunType::kBm25T].hot_ms,
              rows[ir::RunType::kBm25].hot_ms /
                  rows[ir::RunType::kBm25T].hot_ms);
  std::printf("  compression cuts cold time:     %.3f -> %.3f ms\n",
              rows[ir::RunType::kBm25T].cold_ms,
              rows[ir::RunType::kBm25TC].cold_ms);
  std::printf("  materialization cuts hot time:  %.3f -> %.3f ms (cold may "
              "regress: f32 scores are bigger than compressed tf)\n",
              rows[ir::RunType::kBm25TC].hot_ms,
              rows[ir::RunType::kBm25TCM].hot_ms);
  std::printf("  quantization recovers cold I/O: %.3f -> %.3f ms, p@20 "
              "unchanged (%.4f vs %.4f)\n",
              rows[ir::RunType::kBm25TCM].cold_ms,
              rows[ir::RunType::kBm25TCMQ8].cold_ms,
              rows[ir::RunType::kBm25TCM].p20,
              rows[ir::RunType::kBm25TCMQ8].p20);
  return 0;
}

}  // namespace
}  // namespace x100ir

int main() { return x100ir::Run(); }
