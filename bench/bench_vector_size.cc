// Reproduces the §4 demonstration knob: "we also run benchmarks using
// varying MonetDB/X100 parameters, such as the vector size used in the
// execution pipeline."
//
// Expected shape (the classic X100 curve): vector size 1 degenerates to
// tuple-at-a-time Volcano execution (interpretation overhead per tuple);
// very large vectors spill the CPU cache (materialization overheads);
// the optimum sits at a few hundred to a few thousand values.
#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "common/string_util.h"
#include "common/table_printer.h"
#include "ir/search_engine.h"

namespace x100ir {
namespace {

int Run() {
  std::printf("=== Vector-size sweep (§4 demonstration parameter) ===\n\n");
  core::Database db;
  bench::CheckOk(bench::OpenBenchDatabase(&db), "open database");

  ir::QueryGenOptions qopts = bench::BenchQueryOptions();
  qopts.num_efficiency_queries = 300;
  ir::QueryGenerator gen(db.corpus(), qopts);
  auto queries = gen.EfficiencyQueries();

  // Hot data: warm the pool once with the default vector size.
  {
    ir::SearchOptions opts;
    ir::SearchResult result;
    for (const auto& q : queries) {
      bench::CheckOk(db.Search(q, ir::RunType::kBm25, opts, &result), "warm");
    }
  }

  const uint32_t sizes[] = {1,   4,    16,   64,    256,  1024,
                            4096, 16384, 65536};
  TablePrinter table({"vector size", "BM25 hot avg (ms)", "relative"});
  std::vector<std::pair<uint32_t, double>> rows;
  for (uint32_t vs : sizes) {
    ir::SearchOptions opts;
    opts.vector_size = vs;
    // The §4 figure is about the *interpretation overhead* of the pure
    // vectorized pipeline, so pin the PR 3 score-all union plan: MaxScore
    // pruning (PR 4) deliberately decouples work from vector size, which
    // would flatten exactly the curve this bench demonstrates
    // (bench_table1_systems measures that path instead).
    opts.maxscore_bm25 = false;
    ir::SearchResult result;
    double total = 0.0;
    for (const auto& q : queries) {
      bench::CheckOk(db.Search(q, ir::RunType::kBm25, opts, &result),
                     "search");
      total += result.TotalSeconds();
    }
    rows.emplace_back(vs, total * 1e3 / static_cast<double>(queries.size()));
    std::fprintf(stderr, "[bench] vector size %u done\n", vs);
  }
  double best = rows[0].second;
  for (const auto& [vs, ms] : rows) best = std::min(best, ms);
  for (const auto& [vs, ms] : rows) {
    table.AddRow({StrFormat("%u", vs), StrFormat("%.3f", ms),
                  StrFormat("%.2fx", ms / best)});
  }
  table.Print();

  std::printf(
      "\nshape: per-tuple interpretation overhead should make vector size 1 "
      "an order of magnitude slower than the optimum (~1K values, which "
      "keeps a query's working set in cache).\n");
  return 0;
}

}  // namespace
}  // namespace x100ir

int main() { return x100ir::Run(); }
