// Reproduces the §3.3 compression claims: "we were able to reduce the sizes
// of the docid and tf columns ... from 32 to 11.98 and 8.13 bits per tuple,
// respectively", using PFOR-DELTA (8-bit codewords) for the partially
// ordered docid column and PFOR (8-bit) for the small tf values.
//
// Also measures the whole-index footprint (the paper's distributed setup
// relied on the compressed 10GB index fitting in RAM) and a PDICT ablation.
#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "common/string_util.h"
#include "common/table_printer.h"
#include "compress/pdict.h"
#include "ir/index_meta.h"
#include "storage/column_reader.h"

namespace x100ir {
namespace {

struct ColumnInfo {
  const char* label;
  const char* file;
  double paper_bits;  // 0 = not reported
};

int Run() {
  std::printf("=== §3.3 compression ratios (bits per tuple) ===\n\n");
  core::Database db;
  bench::CheckOk(bench::OpenBenchDatabase(&db), "open database");
  std::string dir = bench::BenchDir() + "/full";

  const ColumnInfo columns[] = {
      {"TD.docid raw", ir::kDocidRawFile, 32.0},
      {"TD.docid PFOR-DELTA(8)", ir::kDocidCompressedFile, 11.98},
      {"TD.tf raw", ir::kTfRawFile, 32.0},
      {"TD.tf PFOR(8)", ir::kTfCompressedFile, 8.13},
      {"TD.score f32 (materialized)", ir::kScoreF32File, 32.0},
      {"TD.score quantized 8-bit", ir::kScoreQ8File, 0.0},
  };

  TablePrinter table({"column", "bits/tuple", "file size", "paper"});
  storage::SimulatedDisk disk;
  storage::BufferManager bm(1ull << 30, &disk);
  uint32_t file_id = 100;
  uint64_t raw_bytes = 0, compressed_bytes = 0;
  for (const auto& info : columns) {
    storage::ColumnReader reader;
    bench::CheckOk(reader.Open(dir + "/" + std::string(info.file), file_id++,
                               &bm),
                   "open column");
    uint64_t size = 0;
    {
      storage::File f;
      bench::CheckOk(
          storage::File::OpenReadOnly(dir + "/" + std::string(info.file), &f),
          "open file");
      bench::CheckOk(f.Size(&size), "size");
    }
    double bits = 8.0 * static_cast<double>(size) /
                  static_cast<double>(reader.value_count());
    table.AddRow({info.label, StrFormat("%.2f", bits), HumanBytes(size),
                  info.paper_bits > 0 ? StrFormat("%.2f", info.paper_bits)
                                      : std::string("-")});
    if (std::string(info.file).find("raw") != std::string::npos &&
        std::string(info.label).find("score") == std::string::npos) {
      raw_bytes += size;
    }
    if (std::string(info.file).find("pfor") != std::string::npos) {
      compressed_bytes += size;
    }
  }
  table.Print();
  std::printf(
      "\nTD table I/O volume: raw %s vs compressed %s (%.2fx) — this is the "
      "ratio that shrinks the cold-run times in Table 2 and lets the "
      "distributed index stay in RAM (§3.4).\n",
      HumanBytes(raw_bytes).c_str(), HumanBytes(compressed_bytes).c_str(),
      static_cast<double>(raw_bytes) /
          static_cast<double>(compressed_bytes));

  // PDICT ablation on the tf column (frequency-skewed small integers).
  {
    storage::ColumnReader tf;
    bench::CheckOk(tf.Open(dir + "/" + std::string(ir::kTfRawFile), 999, &bm),
                   "open tf");
    uint32_t n = static_cast<uint32_t>(
        std::min<uint64_t>(tf.value_count(), 1u << 20));
    std::vector<int32_t> values(n);
    bench::CheckOk(tf.Read(0, n, values.data()), "read tf");
    std::vector<uint8_t> block;
    compress::BlockStats stats;
    bench::CheckOk(
        compress::PdictEncode(values.data(), n, {}, &block, &stats),
        "pdict encode");
    std::printf(
        "\nPDICT ablation on tf (%u values): %.2f bits/tuple at dictionary "
        "width b=%d, %u exceptions — PFOR wins on tf because the values are "
        "already tiny integers.\n",
        n, stats.BitsPerValue(), stats.bit_width, stats.n_exceptions);
  }
  return 0;
}

}  // namespace
}  // namespace x100ir

int main() { return x100ir::Run(); }
