// Table 1 context: "custom-built information retrieval engines have always
// outperformed generic database technology". This bench pits hand-rolled
// custom IR engines (document-at-a-time, term-at-a-time, and MaxScore DAAT
// over raw in-RAM postings — the kind of system Table 1 lists) against the
// DBMS formulation running on the vectorized engine, on identical data and
// the identical BM25 model. The paper's point, reproduced: with vectorized
// in-cache execution + light-weight compression + block skipping, the DBMS
// is competitive.
//
// Three experiments, all recorded in BENCH_table1.json (set
// X100IR_BENCH_JSON=<path> to write it) and gated by CI's bench-smoke job
// via the "GATE <name> <value>" lines:
//
//   1. ranked bake-off — custom DAAT/TAAT/MaxScore vs the DBMS BM25 runs
//      (PR 3 score-all union vs the streaming Block-Max MaxScore path),
//      p@20 + hot avg ms/query over the efficiency batch. The DBMS row
//      reports the ExecStats counters `windows_blockmax_skipped` (128-tf
//      windows whose persisted (max_tf, min_doclen) bound could not beat
//      the live threshold — never decoded) and `fused_windows` (windows
//      scored by the fused decode→score kernel, DESIGN.md §12.3), proving
//      the Block-Max + fused hot path is actually exercised;
//   2. conjunctive queries — PR 3 materialize-then-intersect vs the
//      streaming skip join, with the ExecStats window counters proving the
//      skipping is real, not just faster wall-clock;
//   3. SIMD unpack — shuffle-table LOOP1 vs scalar, sampling bit widths
//      across the full supported 1..30 range.
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "common/rng.h"
#include "common/string_util.h"
#include "common/table_printer.h"
#include "common/timer.h"
#include "compress/pfor.h"
#include "compress/unpack.h"
#include "ir/custom_engine.h"
#include "ir/metrics.h"
#include "ir/search_engine.h"

namespace x100ir {
namespace {

struct JsonWriter {
  std::string body;
  bool first = true;

  void Add(const std::string& name, const std::string& fields) {
    body += StrFormat("%s    {\"name\": \"%s\", %s}", first ? "" : ",\n",
                      name.c_str(), fields.c_str());
    first = false;
  }

  void WriteIfRequested() const {
    const char* path = std::getenv("X100IR_BENCH_JSON");
    if (path == nullptr || path[0] == '\0') return;
    std::FILE* f = std::fopen(path, "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", path);
      return;
    }
    std::fprintf(
        f,
        "{\n  \"comment\": \"Table 1 bake-off: custom IR engines vs the "
        "vectorized DBMS, conjunctive streaming-vs-materialized, and "
        "SIMD-vs-scalar LOOP1 unpack. ms are hot avg per query. The "
        "dbms_bm25_maxscore row is the Block-Max MaxScore hot path: "
        "windows_blockmax_skipped counts 128-tf windows pruned by their "
        "persisted (max_tf, min_doclen) bound without decoding, "
        "fused_windows counts windows scored by the fused decode-to-score "
        "kernel (DESIGN.md 12).\",\n"
        "  \"command\": \"X100IR_BENCH_JSON=BENCH_table1.json "
        "./build/bench_table1_systems\",\n  \"results\": [\n%s\n  ]\n}\n",
        body.c_str());
    std::fclose(f);
  }
};

// --- Experiment 3: SIMD vs scalar LOOP1 ------------------------------------

double MeasureDecodeGbps(const compress::BlockDecoder& dec, int32_t* out) {
  // Best-of-3, counting decoded output bytes (the convention of
  // bench_codecs / BENCH_codecs.json).
  double best = 0.0;
  for (int rep = 0; rep < 3; ++rep) {
    WallTimer timer;
    constexpr int kIters = 8;
    for (int i = 0; i < kIters; ++i) dec.DecodeAll(out);
    const double secs = timer.ElapsedSeconds();
    const double gbps = 4.0 * dec.n() * kIters / secs / 1e9;
    if (gbps > best) best = gbps;
  }
  return best;
}

void RunSimdUnpackExperiment(TablePrinter* table, JsonWriter* json,
                             bool* simd_beats_scalar) {
  using compress::internal::ActiveSimdLevel;
  using compress::internal::SetSimdUnpackEnabled;
  using compress::internal::SimdLevelName;
  using compress::internal::SimdUnpackAvailable;

  constexpr uint32_t kN = 1u << 20;
  std::vector<int32_t> values(kN), out(kN);
  *simd_beats_scalar = true;
  // Samples across the full supported 1..30 range (the AVX2 path covers
  // every width since PR 9, not just the byte-aligned ones). CI's gate
  // names stay stable: b4/b8/b16 predate the sweep extension.
  for (int b : {1, 4, 5, 8, 11, 16, 20, 30}) {
    Rng rng(0xb17 + b);
    for (uint32_t i = 0; i < kN; ++i) {
      values[i] = static_cast<int32_t>(rng.Next() & ((1ull << b) - 1));
    }
    // PFOR with forced base 0 and no exceptions: DecodeAll is pure LOOP1.
    compress::EncodeOptions opts;
    opts.bit_width = b;
    opts.force_base = true;
    std::vector<uint8_t> block;
    bench::CheckOk(compress::PforEncode(values.data(), kN, opts, &block,
                                        nullptr),
                   "pfor encode");
    compress::BlockDecoder dec;
    bench::CheckOk(dec.Init(block.data(), block.size()), "decoder init");

    SetSimdUnpackEnabled(false);
    const double scalar = MeasureDecodeGbps(dec, out.data());
    SetSimdUnpackEnabled(true);
    const double simd = MeasureDecodeGbps(dec, out.data());
    const bool available = SimdUnpackAvailable(b);
    const double ratio = simd / scalar;
    if (available && ratio <= 1.0) *simd_beats_scalar = false;
    table->AddRow({StrFormat("LOOP1 unpack b=%d", b),
                   StrFormat("%.2f GB/s", scalar),
                   available ? StrFormat("%.2f GB/s (%s)", simd,
                                         SimdLevelName(ActiveSimdLevel()))
                             : "n/a (no SIMD on host)",
                   StrFormat("%.2fx", ratio)});
    json->Add(StrFormat("simd_unpack_b%d", b),
              StrFormat("\"scalar_gbps\": %.3f, \"simd_gbps\": %.3f, "
                        "\"speedup\": %.3f, \"simd_available\": %s",
                        scalar, simd, ratio, available ? "true" : "false"));
    std::printf("GATE simd_speedup_b%d %.3f\n", b, available ? ratio : 1.0);
  }
}

// --- Experiments 1 & 2: query bake-off --------------------------------------

struct RunMeasurement {
  double p20 = 0.0;
  double avg_ms = 0.0;
  vec::ExecStats stats;  // summed over the timed batch (DBMS runs only)
  uint64_t matches = 0;
};

template <typename SearchFn>
RunMeasurement MeasureRun(const std::vector<ir::Query>& eval_queries,
                          const std::vector<ir::Query>& timed_queries,
                          const ir::Qrels& qrels, SearchFn&& run,
                          bool scored) {
  RunMeasurement m;
  std::vector<double> p20s;
  if (scored) {
    for (const auto& q : eval_queries) {
      std::vector<int32_t> docids;
      double secs = 0.0;
      vec::ExecStats stats;
      uint64_t matches = 0;
      run(q, &docids, &secs, &stats, &matches);
      p20s.push_back(ir::PrecisionAtK(docids, 20, qrels, q.topic));
    }
    m.p20 = ir::Mean(p20s);
  }
  // Warm pass (everything is memory-resident, so one pass settles caches
  // and the index's lazily-touched pages), then three timed passes keeping
  // the fastest: min-of-N filters scheduler and frequency noise on a
  // shared host, and every system row gets the same treatment. Stats and
  // match counts are deterministic across passes, so they are folded from
  // the first timed pass only.
  std::vector<int32_t> docids;
  for (const auto& q : timed_queries) {
    double secs = 0.0;
    vec::ExecStats stats;
    uint64_t matches = 0;
    run(q, &docids, &secs, &stats, &matches);
  }
  double best = 0.0;
  for (int pass = 0; pass < 3; ++pass) {
    double total = 0.0;
    for (const auto& q : timed_queries) {
      double secs = 0.0;
      vec::ExecStats stats;
      uint64_t matches = 0;
      run(q, &docids, &secs, &stats, &matches);
      total += secs;
      if (pass == 0) {
        m.stats.Add(stats);
        m.matches += matches;
      }
    }
    if (pass == 0 || total < best) best = total;
  }
  m.avg_ms = best * 1e3 / static_cast<double>(timed_queries.size());
  return m;
}

// Head-to-head variant for the gate comparison: the two contenders run
// interleaved, query by query, over three timed passes (fastest pass per
// contender wins). Rows measured minutes apart are hostage to frequency
// and scheduler drift on a busy host; pairing the runs makes the reported
// ratio reflect the engines, not the weather.
template <typename FnA, typename FnB>
void MeasureRunPaired(const std::vector<ir::Query>& eval_queries,
                      const std::vector<ir::Query>& timed_queries,
                      const ir::Qrels& qrels, FnA&& run_a, FnB&& run_b,
                      RunMeasurement* out_a, RunMeasurement* out_b) {
  const auto eval_pass = [&](auto&& run) {
    std::vector<double> p20s;
    for (const auto& q : eval_queries) {
      std::vector<int32_t> docids;
      double secs = 0.0;
      vec::ExecStats stats;
      uint64_t matches = 0;
      run(q, &docids, &secs, &stats, &matches);
      p20s.push_back(ir::PrecisionAtK(docids, 20, qrels, q.topic));
    }
    return ir::Mean(p20s);
  };
  out_a->p20 = eval_pass(run_a);
  out_b->p20 = eval_pass(run_b);
  std::vector<int32_t> docids;
  double best_a = 0.0;
  double best_b = 0.0;
  for (int pass = -1; pass < 3; ++pass) {  // pass -1 warms both
    double ta = 0.0;
    double tb = 0.0;
    for (const auto& q : timed_queries) {
      double secs = 0.0;
      vec::ExecStats stats;
      uint64_t matches = 0;
      run_a(q, &docids, &secs, &stats, &matches);
      ta += secs;
      if (pass == 0) {
        out_a->stats.Add(stats);
        out_a->matches += matches;
      }
      secs = 0.0;
      stats = vec::ExecStats();
      matches = 0;
      run_b(q, &docids, &secs, &stats, &matches);
      tb += secs;
      if (pass == 0) {
        out_b->stats.Add(stats);
        out_b->matches += matches;
      }
    }
    if (pass < 0) continue;
    if (pass == 0 || ta < best_a) best_a = ta;
    if (pass == 0 || tb < best_b) best_b = tb;
  }
  out_a->avg_ms = best_a * 1e3 / static_cast<double>(timed_queries.size());
  out_b->avg_ms = best_b * 1e3 / static_cast<double>(timed_queries.size());
}

int Run() {
  std::printf(
      "=== Table 1 context: custom IR engines vs the DBMS formulation "
      "===\n\n");
  core::Database db;
  bench::CheckOk(bench::OpenBenchDatabase(&db), "open database");
  JsonWriter json;

  ir::QueryGenOptions qopts = bench::BenchQueryOptions();
  ir::QueryGenerator gen(db.corpus(), qopts);
  ir::Qrels qrels(db.corpus());
  const auto eval_queries = gen.EvalQueries();
  const auto queries = gen.EfficiencyQueries();
  // Conjunctive experiment: multi-term queries only (a 1-term AND is a
  // scan; skipping needs something to intersect against).
  std::vector<ir::Query> conj_queries;
  for (const auto& q : queries) {
    if (q.terms.size() >= 2) conj_queries.push_back(q);
  }

  ir::CustomIrEngine custom;
  bench::CheckOk(custom.Load(db.index()), "load custom engine");
  std::printf(
      "custom engine resident set: %s (raw uncompressed postings)\n\n",
      HumanBytes(custom.resident_bytes()).c_str());

  // ---- Experiment 1: ranked runs ----
  TablePrinter ranked({"system", "p@20", "hot avg ms/query", "notes"});
  auto add_custom = [&](const char* name, const char* jname, auto method,
                        const char* note) {
    const RunMeasurement m = MeasureRun(
        eval_queries, queries, qrels,
        [&](const ir::Query& q, std::vector<int32_t>* docids, double* secs,
            vec::ExecStats* stats, uint64_t* matches) {
          (void)stats;
          ir::CustomSearchResult r;
          bench::CheckOk((custom.*method)(q, 20, &r), "custom search");
          *docids = std::move(r.docids);
          *secs = r.cpu_seconds;
          *matches = r.num_matches;
        },
        /*scored=*/true);
    ranked.AddRow({name, StrFormat("%.4f", m.p20),
                   StrFormat("%.3f", m.avg_ms), note});
    json.Add(jname, StrFormat("\"p20\": %.4f, \"avg_ms\": %.4f", m.p20,
                              m.avg_ms));
    return m;
  };
  const RunMeasurement daat =
      add_custom("Custom IR engine (DAAT)", "custom_daat",
                 &ir::CustomIrEngine::SearchDaat,
                 "hand-rolled, raw in-RAM postings");
  add_custom("Custom IR engine (TAAT)", "custom_taat",
             &ir::CustomIrEngine::SearchTaat, "accumulator array per query");
  auto run_dbms = [&](ir::RunType type, const ir::SearchOptions& opts) {
    return [&, type, opts](const ir::Query& q, std::vector<int32_t>* docids,
                           double* secs, vec::ExecStats* stats,
                           uint64_t* matches) {
      ir::SearchResult r;
      bench::CheckOk(db.Search(q, type, opts, &r), "dbms search");
      *docids = std::move(r.docids);
      *secs = r.seconds;
      *stats = r.stats;
      *matches = r.num_matches;
    };
  };

  ir::SearchOptions pr3_opts;
  pr3_opts.streaming_and = false;
  pr3_opts.maxscore_bm25 = false;
  ir::SearchOptions stream_opts;  // defaults: streaming + MaxScore

  // The gate pair — the hand-rolled MaxScore baseline and the DBMS
  // Block-Max MaxScore formulation — is measured head-to-head so the
  // dbms_vs_custom_maxscore_ratio gate compares like conditions. The
  // dispatch level is captured NOW: experiment 3 toggles SIMD for its
  // scalar/SIMD sweep and leaves it enabled, which must not launder a
  // scalar ranked run into a gated one.
  const bool ranked_on_avx2 = compress::internal::ActiveSimdLevel() ==
                              compress::internal::SimdLevel::kAvx2;
  RunMeasurement custom_ms;
  RunMeasurement bm25_ms;
  MeasureRunPaired(
      eval_queries, queries, qrels,
      [&](const ir::Query& q, std::vector<int32_t>* docids, double* secs,
          vec::ExecStats* stats, uint64_t* matches) {
        (void)stats;
        ir::CustomSearchResult r;
        bench::CheckOk(custom.SearchMaxScore(q, 20, &r), "custom search");
        *docids = std::move(r.docids);
        *secs = r.cpu_seconds;
        *matches = r.num_matches;
      },
      run_dbms(ir::RunType::kBm25, stream_opts), &custom_ms, &bm25_ms);
  ranked.AddRow({"Custom IR engine (MaxScore)", StrFormat("%.4f", custom_ms.p20),
                 StrFormat("%.3f", custom_ms.avg_ms),
                 "DAAT + exact top-k pruning"});
  json.Add("custom_maxscore",
           StrFormat("\"p20\": %.4f, \"avg_ms\": %.4f", custom_ms.p20,
                     custom_ms.avg_ms));

  const RunMeasurement bm25_pr3 = MeasureRun(
      eval_queries, queries, qrels, run_dbms(ir::RunType::kBm25, pr3_opts),
      /*scored=*/true);
  ranked.AddRow({"DBMS BM25 (PR 3: score-all union)",
                 StrFormat("%.4f", bm25_pr3.p20),
                 StrFormat("%.3f", bm25_pr3.avg_ms),
                 "relational plans, no pruning"});
  json.Add("dbms_bm25_union",
           StrFormat("\"p20\": %.4f, \"avg_ms\": %.4f", bm25_pr3.p20,
                     bm25_pr3.avg_ms));
  ranked.AddRow({"DBMS BM25 (Block-Max MaxScore)",
                 StrFormat("%.4f", bm25_ms.p20),
                 StrFormat("%.3f", bm25_ms.avg_ms),
                 StrFormat("%llu blockmax-skipped, %llu fused wins",
                           static_cast<unsigned long long>(
                               bm25_ms.stats.windows_blockmax_skipped),
                           static_cast<unsigned long long>(
                               bm25_ms.stats.fused_windows))});
  json.Add("dbms_bm25_maxscore",
           StrFormat("\"p20\": %.4f, \"avg_ms\": %.4f, "
                     "\"vectors_pruned\": %llu, \"docs_probed\": %llu, "
                     "\"windows_blockmax_skipped\": %llu, "
                     "\"fused_windows\": %llu",
                     bm25_ms.p20, bm25_ms.avg_ms,
                     static_cast<unsigned long long>(
                         bm25_ms.stats.vectors_pruned),
                     static_cast<unsigned long long>(
                         bm25_ms.stats.docs_probed),
                     static_cast<unsigned long long>(
                         bm25_ms.stats.windows_blockmax_skipped),
                     static_cast<unsigned long long>(
                         bm25_ms.stats.fused_windows)));
  ranked.Print();
  // Block-Max skips must never change what the user sees: p@20 of the
  // Block-Max run has to match the score-all union oracle exactly.
  if (bm25_ms.p20 != bm25_pr3.p20) {
    std::fprintf(stderr, "FATAL Block-Max p@20 drifted: %.6f vs %.6f\n",
                 bm25_ms.p20, bm25_pr3.p20);
    return 1;
  }

  // ---- Experiment 2: conjunctive streaming vs materialized ----
  std::printf("\n--- Conjunctive (BoolAND) queries: %zu multi-term ---\n",
              conj_queries.size());
  const RunMeasurement and_pr3 = MeasureRun(
      eval_queries, conj_queries, qrels,
      run_dbms(ir::RunType::kBoolAnd, pr3_opts), /*scored=*/false);
  const RunMeasurement and_stream = MeasureRun(
      eval_queries, conj_queries, qrels,
      run_dbms(ir::RunType::kBoolAnd, stream_opts), /*scored=*/false);
  if (and_pr3.matches != and_stream.matches) {
    std::fprintf(stderr,
                 "FATAL conjunctive paths disagree: %llu vs %llu matches\n",
                 static_cast<unsigned long long>(and_pr3.matches),
                 static_cast<unsigned long long>(and_stream.matches));
    return 1;
  }
  TablePrinter conj({"conjunctive path", "hot avg ms/query",
                     "docid windows decoded", "windows skipped"});
  conj.AddRow({"PR 3 materialize-then-intersect",
               StrFormat("%.3f", and_pr3.avg_ms), "all overlapping", "0"});
  conj.AddRow({"streaming skip join",
               StrFormat("%.3f", and_stream.avg_ms),
               StrFormat("%llu", static_cast<unsigned long long>(
                                     and_stream.stats.windows_decoded)),
               StrFormat("%llu", static_cast<unsigned long long>(
                                     and_stream.stats.windows_skipped))});
  conj.Print();
  const double and_speedup = and_pr3.avg_ms / and_stream.avg_ms;
  json.Add("conjunctive",
           StrFormat("\"materialized_avg_ms\": %.4f, "
                     "\"streaming_avg_ms\": %.4f, \"speedup\": %.3f, "
                     "\"windows_decoded\": %llu, \"windows_skipped\": %llu",
                     and_pr3.avg_ms, and_stream.avg_ms, and_speedup,
                     static_cast<unsigned long long>(
                         and_stream.stats.windows_decoded),
                     static_cast<unsigned long long>(
                         and_stream.stats.windows_skipped)));

  // ---- Experiment 3: SIMD unpack ----
  std::printf("\n--- LOOP1 unpack: SIMD shuffle vs scalar ---\n");
  TablePrinter simd({"kernel", "scalar", "simd", "speedup"});
  bool simd_beats_scalar = false;
  RunSimdUnpackExperiment(&simd, &json, &simd_beats_scalar);
  simd.Print();

  // ---- Gates (CI bench-smoke parses these) ----
  std::printf("\n");
  std::printf("GATE bm25_vs_daat_ratio %.3f\n", bm25_ms.avg_ms / daat.avg_ms);
  std::printf("GATE and_streaming_speedup %.3f\n", and_speedup);
  std::printf("GATE and_skipped_windows %llu\n",
              static_cast<unsigned long long>(
                  and_stream.stats.windows_skipped));
  std::printf("GATE bm25_vectors_pruned %llu\n",
              static_cast<unsigned long long>(bm25_ms.stats.vectors_pruned));
  // PR 9 gates: Block-Max skipping must actually fire over the efficiency
  // batch (the query log is 25% single- and 40% two-term, where the static
  // other-term bound leaves θ room to clear per-window bounds), and the
  // DBMS Block-Max MaxScore run must be at least as fast as the hand-rolled
  // custom MaxScore engine (ratio <= 1.0 — the Table 1 claim, now won
  // outright rather than merely "competitive").
  std::printf("GATE bm25_blockmax_skipped %llu\n",
              static_cast<unsigned long long>(
                  bm25_ms.stats.windows_blockmax_skipped));
  std::printf("GATE bm25_fused_windows %llu\n",
              static_cast<unsigned long long>(bm25_ms.stats.fused_windows));
  std::printf("GATE dbms_vs_custom_maxscore_ratio %.3f\n",
              bm25_ms.avg_ms / custom_ms.avg_ms);
  // Self-disabling escape hatch (the speedup_gated pattern): the <= 1.0
  // ratio claim rides on the AVX2 fused/select kernels AND on full-scale
  // lists long enough to amortize the DBMS's per-query setup — a scalar
  // host or the tiny CI collection reports the ratio but is not held to
  // it. Block-Max skips need full scale too (θ never clears a window
  // bound over 2k-doc lists).
  const bool ratio_gated =
      ranked_on_avx2 && bench::Scale() != bench::BenchScale::kTiny;
  std::printf("GATE maxscore_ratio_gated %d\n", ratio_gated ? 1 : 0);
  json.Add("gates",
           StrFormat("\"bm25_vs_daat_ratio\": %.3f, "
                     "\"and_streaming_speedup\": %.3f, "
                     "\"simd_beats_scalar\": %s, "
                     "\"bm25_blockmax_skipped\": %llu, "
                     "\"dbms_vs_custom_maxscore_ratio\": %.3f",
                     bm25_ms.avg_ms / daat.avg_ms, and_speedup,
                     simd_beats_scalar ? "true" : "false",
                     static_cast<unsigned long long>(
                         bm25_ms.stats.windows_blockmax_skipped),
                     bm25_ms.avg_ms / custom_ms.avg_ms));
  json.WriteIfRequested();

  std::printf(
      "\nPaper's Table 1 — top TREC-TB 2005 efficiency results (reference "
      "only; different hardware/collection):\n"
      "  MU05TBy3     p@20 0.5550   8 CPUs   24 ms/query\n"
      "  uwmtEwteD10  p@20 0.3900   2 CPUs   27 ms/query\n"
      "  MU05TBy1     p@20 0.5620   8 CPUs   42 ms/query\n"
      "  zetdist      p@20 0.5300   8 CPUs   58 ms/query\n"
      "  pisaEff4     p@20 0.3420  23 CPUs  143 ms/query\n"
      "\nThe paper's MonetDB/X100 runs reach p@20 0.546-0.549 at 28-118 "
      "ms/query on 1 CPU (Table 2) — competitive with the custom engines "
      "above. The reproduction's claim is the same comparison on the "
      "synthetic collection: the DBMS's best run within a small factor of "
      "the hand-rolled engines at equal precision.\n");
  return 0;
}

}  // namespace
}  // namespace x100ir

int main() { return x100ir::Run(); }
