// Table 1 context: "custom-built information retrieval engines have always
// outperformed generic database technology". This bench pits our hand-rolled
// custom IR engines (document-at-a-time and term-at-a-time over raw in-RAM
// postings — the kind of system Table 1 lists) against the DBMS formulation
// running on the vectorized engine, on identical data and the identical
// BM25 model. The paper's point, reproduced: with vectorized in-cache
// execution + light-weight compression, the DBMS is competitive.
#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "common/string_util.h"
#include "common/table_printer.h"
#include "ir/custom_engine.h"
#include "ir/metrics.h"
#include "ir/search_engine.h"

namespace x100ir {
namespace {

int Run() {
  std::printf(
      "=== Table 1 context: custom IR engines vs the DBMS formulation ===\n\n");
  core::Database db;
  bench::CheckOk(bench::OpenBenchDatabase(&db), "open database");

  ir::QueryGenOptions qopts = bench::BenchQueryOptions();
  ir::QueryGenerator gen(db.corpus(), qopts);
  ir::Qrels qrels(db.corpus());
  auto eval_queries = gen.EvalQueries();
  auto queries = gen.EfficiencyQueries();

  ir::CustomIrEngine custom;
  bench::CheckOk(custom.Load(db.index()), "load custom engine");
  std::printf("custom engine resident set: %s (raw uncompressed postings)\n\n",
              HumanBytes(custom.resident_bytes()).c_str());

  TablePrinter table(
      {"system", "p@20", "hot avg query time (ms)", "notes"});

  enum class Mode { kDaat, kTaat, kMaxScore };
  auto add_custom = [&](const char* name, Mode mode, const char* note) {
    auto run = [&](const ir::Query& q, ir::CustomSearchResult* result) {
      switch (mode) {
        case Mode::kDaat:
          return custom.SearchDaat(q, 20, result);
        case Mode::kTaat:
          return custom.SearchTaat(q, 20, result);
        case Mode::kMaxScore:
          return custom.SearchMaxScore(q, 20, result);
      }
      return Status::Internal("unreachable");
    };
    // Precision.
    std::vector<double> p20s;
    ir::CustomSearchResult result;
    for (const auto& q : eval_queries) {
      bench::CheckOk(run(q, &result), "custom search");
      p20s.push_back(ir::PrecisionAtK(result.docids, 20, qrels, q.topic));
    }
    // Speed (already in-memory == hot).
    double total = 0.0;
    for (const auto& q : queries) {
      bench::CheckOk(run(q, &result), "custom search");
      total += result.cpu_seconds;
    }
    table.AddRow({name, StrFormat("%.4f", ir::Mean(p20s)),
                  StrFormat("%.3f",
                            total * 1e3 / static_cast<double>(queries.size())),
                  note});
  };
  add_custom("Custom IR engine (DAAT)", Mode::kDaat,
             "hand-rolled, raw in-RAM postings");
  add_custom("Custom IR engine (TAAT)", Mode::kTaat,
             "hand-rolled, raw in-RAM postings");
  add_custom("Custom IR engine (MaxScore)", Mode::kMaxScore,
             "exact top-k pruning (the paper's SS5 future work)");

  for (ir::RunType type :
       {ir::RunType::kBm25, ir::RunType::kBm25T, ir::RunType::kBm25TCMQ8}) {
    ir::SearchOptions opts;
    ir::SearchResult result;
    std::vector<double> p20s;
    for (const auto& q : eval_queries) {
      bench::CheckOk(db.Search(q, type, opts, &result), "search");
      p20s.push_back(ir::PrecisionAtK(result.docids, 20, qrels, q.topic));
    }
    for (const auto& q : queries) {
      bench::CheckOk(db.Search(q, type, opts, &result), "warm");
    }
    double total = 0.0;
    for (const auto& q : queries) {
      bench::CheckOk(db.Search(q, type, opts, &result), "search");
      total += result.TotalSeconds();
    }
    table.AddRow({std::string("MonetDB/X100-style DBMS, run ") +
                      RunTypeName(type),
                  StrFormat("%.4f", ir::Mean(p20s)),
                  StrFormat("%.3f",
                            total * 1e3 / static_cast<double>(queries.size())),
                  "relational plans on the vectorized engine"});
  }
  table.Print();

  std::printf(
      "\nPaper's Table 1 — top TREC-TB 2005 efficiency results (reference "
      "only; different hardware/collection):\n"
      "  MU05TBy3     p@20 0.5550   8 CPUs   24 ms/query\n"
      "  uwmtEwteD10  p@20 0.3900   2 CPUs   27 ms/query\n"
      "  MU05TBy1     p@20 0.5620   8 CPUs   42 ms/query\n"
      "  zetdist      p@20 0.5300   8 CPUs   58 ms/query\n"
      "  pisaEff4     p@20 0.3420  23 CPUs  143 ms/query\n"
      "\nThe paper's MonetDB/X100 runs reach p@20 0.546-0.549 at 28-118 "
      "ms/query on 1 CPU (Table 2) — competitive with the custom engines "
      "above. The reproduction's claim is the same comparison on the "
      "synthetic collection: the DBMS's best run should be within a small "
      "factor of the hand-rolled engines at equal precision.\n");
  return 0;
}

}  // namespace
}  // namespace x100ir

int main() { return x100ir::Run(); }
