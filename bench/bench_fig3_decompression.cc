// Reproduces Figure 3: "Branch Miss Rate (BMR) and decompression bandwidth
// versus exception rate" for the NAIVE (branchy if-then-else) and PFOR
// (patched two-loop) decoders.
//
// Expected shape: NAIVE bandwidth collapses as the exception rate approaches
// 50% because the exception test becomes unpredictable (BMR peaks), then
// recovers towards 100%; PATCHED has no data-dependent branch, so its BMR
// stays flat and its bandwidth degrades only linearly with patching work.
//
// Branch misses come from hardware counters (perf_event_open) when the
// kernel permits, otherwise from a deterministic 2-bit-saturating-counter
// predictor simulation on the decoder's actual branch trace (DESIGN.md §3.5).
#include <cstdio>
#include <vector>

#include "common/branch_sim.h"
#include "common/perf_counters.h"
#include "common/rng.h"
#include "common/string_util.h"
#include "common/table_printer.h"
#include "common/timer.h"
#include "compress/codec.h"
#include "compress/pfor.h"

namespace x100ir {
namespace {

// 8-bit codewords — the width §3.3 uses for inverted lists. (The figure's
// shape is width-independent; b=8 keeps compulsory-exception noise out of
// the patched variant at low exception rates.)
constexpr uint32_t kValuesPerBlock = 1u << 20;  // 4 MiB decoded per block
constexpr int kBlocks = 8;
constexpr int kBits = 8;
constexpr int kRepeats = 3;

struct SweepPoint {
  double requested_rate;
  double actual_rate;
  double naive_gb_s;
  double patched_gb_s;
  double naive_bmr;
  double patched_bmr;
};

std::vector<int32_t> MakeData(double exc_rate, uint64_t seed) {
  Rng rng(seed);
  std::vector<int32_t> values(kValuesPerBlock);
  const uint32_t sentinel_max = (1u << kBits) - 2;  // NAIVE-encodable codes
  for (auto& v : values) {
    if (rng.NextBernoulli(exc_rate)) {
      v = 1000 + static_cast<int32_t>(rng.NextBounded(1 << 20));
    } else {
      v = static_cast<int32_t>(rng.NextBounded(sentinel_max + 1));
    }
  }
  return values;
}

// Measures decode wall time over all blocks, repeated; returns GB/s of
// decoded output.
template <typename DecodeFn>
double MeasureBandwidth(const std::vector<std::vector<uint8_t>>& blocks,
                        std::vector<int32_t>* out, DecodeFn&& decode) {
  double best = 0.0;
  for (int r = 0; r < kRepeats; ++r) {
    WallTimer timer;
    for (const auto& block : blocks) decode(block, out->data());
    double seconds = timer.ElapsedSeconds();
    double bytes = static_cast<double>(blocks.size()) * kValuesPerBlock * 4;
    best = std::max(best, bytes / seconds / 1e9);
  }
  return best;
}

int Run() {
  std::printf(
      "=== Figure 3: decompression bandwidth & branch miss rate vs exception "
      "rate ===\n");
  std::printf("PFOR b=%d, %d blocks x %u values, best of %d repeats\n\n",
              kBits, kBlocks, kValuesPerBlock, kRepeats);

  PerfCounterGroup counters;
  const bool hw = counters.Available();
  std::printf("branch-miss source: %s\n\n",
              hw ? "hardware counters (perf_event_open)"
                 : "gshare predictor simulation (perf_event_open denied)");

  const double rates[] = {0.0, 0.01, 0.02, 0.05, 0.1, 0.2, 0.3,
                          0.4, 0.5,  0.6,  0.7,  0.8, 0.9, 1.0};
  std::vector<SweepPoint> points;

  for (double rate : rates) {
    // Encode the same data in both layouts.
    std::vector<std::vector<uint8_t>> naive_blocks(kBlocks);
    std::vector<std::vector<uint8_t>> patched_blocks(kBlocks);
    uint64_t total_exc = 0;
    for (int b = 0; b < kBlocks; ++b) {
      auto values = MakeData(rate, 42 + static_cast<uint64_t>(b));
      compress::EncodeOptions naive_opts;
      naive_opts.bit_width = kBits;
      naive_opts.naive_layout = true;
      naive_opts.force_base = true;
      compress::BlockStats stats;
      Status s = PforEncode(values.data(), kValuesPerBlock, naive_opts,
                            &naive_blocks[static_cast<size_t>(b)], &stats);
      if (!s.ok()) {
        std::fprintf(stderr, "encode failed: %s\n", s.ToString().c_str());
        return 1;
      }
      total_exc += stats.n_exceptions;
      compress::EncodeOptions patched_opts;
      patched_opts.bit_width = kBits;
      patched_opts.force_base = true;
      s = PforEncode(values.data(), kValuesPerBlock, patched_opts,
                     &patched_blocks[static_cast<size_t>(b)], nullptr);
      if (!s.ok()) {
        std::fprintf(stderr, "encode failed: %s\n", s.ToString().c_str());
        return 1;
      }
    }

    std::vector<int32_t> out(kValuesPerBlock);
    SweepPoint p;
    p.requested_rate = rate;
    p.actual_rate = static_cast<double>(total_exc) /
                    (static_cast<double>(kBlocks) * kValuesPerBlock);

    auto naive_decode = [](const std::vector<uint8_t>& block, int32_t* dst) {
      compress::BlockDecoder dec;
      dec.Init(block.data(), block.size());
      dec.DecodeNaive(dst);
    };
    auto patched_decode = [](const std::vector<uint8_t>& block,
                             int32_t* dst) {
      compress::BlockDecoder dec;
      dec.Init(block.data(), block.size());
      dec.DecodeAll(dst);
    };

    if (hw) {
      PerfReading reading;
      counters.Start();
      p.naive_gb_s = MeasureBandwidth(naive_blocks, &out, naive_decode);
      counters.Stop(&reading);
      p.naive_bmr = reading.BranchMissRate();
      counters.Start();
      p.patched_gb_s = MeasureBandwidth(patched_blocks, &out, patched_decode);
      counters.Stop(&reading);
      p.patched_bmr = reading.BranchMissRate();
    } else {
      p.naive_gb_s = MeasureBandwidth(naive_blocks, &out, naive_decode);
      p.patched_gb_s = MeasureBandwidth(patched_blocks, &out, patched_decode);
      // Simulated BMR over *all* decoder branches (like a hardware
      // counter): per-value loop-back branches (highly predictable) plus
      // the data-dependent ones.
      // NAIVE: per value, the loop branch and the `code < sentinel` test.
      BranchPredictorSim naive_sim;
      compress::BlockDecoder dec;
      dec.Init(naive_blocks[0].data(), naive_blocks[0].size());
      std::vector<bool> mask;
      dec.ExceptionMask(&mask);
      for (size_t i = 0; i < mask.size(); ++i) {
        naive_sim.Predict(0x10, i + 1 < mask.size());  // loop back
        naive_sim.Predict(0x100, mask[i]);             // exception test
      }
      p.naive_bmr = naive_sim.MissRatePercent();
      // PATCHED: LOOP1 is a branch-free body with one loop-back branch per
      // value; LOOP2 runs one (mostly taken) branch per exception plus a
      // fall-through per 128-value window.
      BranchPredictorSim patched_sim;
      compress::BlockDecoder pdec;
      pdec.Init(patched_blocks[0].data(), patched_blocks[0].size());
      std::vector<bool> pmask;
      pdec.ExceptionMask(&pmask);
      uint32_t per_window = 0;
      for (size_t i = 0; i < pmask.size(); ++i) {
        patched_sim.Predict(0x20, i + 1 < pmask.size());  // LOOP1 back edge
        if (pmask[i]) ++per_window;
        if ((i + 1) % compress::kEntryPointStride == 0 ||
            i + 1 == pmask.size()) {
          for (uint32_t j = 0; j < per_window; ++j) {
            patched_sim.Predict(0x200, true);
          }
          patched_sim.Predict(0x200, false);  // LOOP2 exit
          per_window = 0;
        }
      }
      p.patched_bmr = patched_sim.MissRatePercent();
    }
    points.push_back(p);
  }

  TablePrinter table({"exc.rate", "NAIVE BW (GB/s)", "PFOR BW (GB/s)",
                      "NAIVE BMR (%)", "PFOR BMR (%)"});
  for (const auto& p : points) {
    table.AddRow({StrFormat("%.2f", p.actual_rate),
                  StrFormat("%.2f", p.naive_gb_s),
                  StrFormat("%.2f", p.patched_gb_s),
                  StrFormat("%.2f", p.naive_bmr),
                  StrFormat("%.2f", p.patched_bmr)});
  }
  table.Print();

  // Shape checks mirroring the figure.
  double naive_mid = 0, naive_lo = 0, patched_lo = 0;
  for (const auto& p : points) {
    if (p.requested_rate == 0.5) naive_mid = p.naive_gb_s;
    if (p.requested_rate == 0.0) {
      naive_lo = p.naive_gb_s;
      patched_lo = p.patched_gb_s;
    }
  }
  std::printf(
      "\nshape: NAIVE bandwidth at 50%% exceptions is %.1f%% of its "
      "0%%-exception bandwidth (paper: collapses);\n       PFOR at 0%% "
      "exceptions reaches %.2f GB/s (paper: ~3.5 GB/s on 2006 hardware).\n",
      100.0 * naive_mid / naive_lo, patched_lo);
  return 0;
}

}  // namespace
}  // namespace x100ir

int main() { return x100ir::Run(); }
