// Live-update interference bench (DESIGN.md §10): what does the segmented
// index cost the read path while it is being written to?
//
//   1. Quiescent baseline — ranked-query p50/p99 against the freshly
//      opened (single-segment, "plain" snapshot) database.
//   2. Ingest throughput — AddDocument docs/sec into the delta write
//      buffer, each add publishing a new snapshot.
//   3. Merge interference — the gated phase: query latency measured while
//      a background merge compacts the delta into a new compressed
//      segment. Queries run against the sealed delta + old segments the
//      whole time (snapshot pinning; no read ever blocks on the merge).
//
// Gate: during-merge p50 within 2x of the quiescent p50. The comparison is
// CPU-relative on one host, so it is runner-independent in shape, but a
// runner with < 4 cores can schedule the merge thread on top of the query
// thread and fake interference — the gate self-disables there
// (interference_gated 0), mirroring bench_concurrency's scaling gate.
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "common/rng.h"
#include "common/string_util.h"
#include "common/table_printer.h"
#include "common/timer.h"
#include "ir/query_gen.h"
#include "ir/search_engine.h"

namespace x100ir {
namespace {

double Percentile(std::vector<double> v, double q) {
  if (v.empty()) return 0.0;
  std::sort(v.begin(), v.end());
  const size_t idx = static_cast<size_t>(q * static_cast<double>(v.size()));
  return v[std::min(idx, v.size() - 1)];
}

// Runs `samples` ranked queries round-robin over the batch, recording
// per-query wall latency. Aborts the bench on any query failure.
std::vector<double> MeasureLatencies(const core::Database& db,
                                     const std::vector<ir::Query>& queries,
                                     size_t samples) {
  ir::SearchOptions opts;
  ir::SearchResult result;
  std::vector<double> lat;
  lat.reserve(samples);
  for (size_t i = 0; i < samples; ++i) {
    const ir::Query& q = queries[i % queries.size()];
    WallTimer t;
    bench::CheckOk(db.Search(q, ir::RunType::kBm25, opts, &result), "search");
    lat.push_back(t.ElapsedSeconds());
  }
  return lat;
}

// One synthetic ingest document: uniform draws over the vocabulary
// (duplicates fold into tf). Uniform (not Zipf) keeps the generator out of
// the measured loop — ingest cost is dominated by posting appends and
// snapshot publication, not term choice.
std::vector<uint32_t> MakeDoc(Rng* rng, uint32_t vocab) {
  const uint32_t len = 30 + static_cast<uint32_t>(rng->Next() % 50);
  std::vector<uint32_t> terms(len);
  for (uint32_t i = 0; i < len; ++i) {
    terms[i] = static_cast<uint32_t>(rng->Next() % vocab);
  }
  return terms;
}

int Run() {
  std::printf("=== Segmented index: ingest vs query interference ===\n\n");

  core::DatabaseOptions opts;
  opts.dir = bench::BenchDir() + "/ingest";
  opts.corpus = bench::BenchCorpusOptions();
  opts.corpus.num_docs = std::min(opts.corpus.num_docs, 20000u);
  opts.corpus.num_topics = 20;
  opts.corpus.relevant_docs_per_topic = 60;
  core::Database db;
  bench::CheckOk(db.Open(opts), "open database");

  ir::QueryGenOptions qopts = bench::BenchQueryOptions();
  qopts.num_efficiency_queries = 100;
  ir::QueryGenerator gen(db.corpus(), qopts);
  const std::vector<ir::Query> queries = gen.EfficiencyQueries();
  const uint32_t cores = std::thread::hardware_concurrency();
  const bool tiny = bench::Scale() == bench::BenchScale::kTiny;
  const size_t quiescent_samples = tiny ? 300 : 600;
  const uint32_t ingest_docs = tiny ? 2000 : 8000;

  // ---- 1. Quiescent baseline (plain snapshot, monolithic hot path). ----
  MeasureLatencies(db, queries, queries.size());  // warm
  std::vector<double> quiescent =
      MeasureLatencies(db, queries, quiescent_samples);
  const double q_p50 = Percentile(quiescent, 0.50) * 1e3;
  const double q_p99 = Percentile(quiescent, 0.99) * 1e3;

  // ---- 2. Ingest throughput into the delta write buffer. ---------------
  Rng rng(0x1267E57);
  WallTimer ingest_timer;
  for (uint32_t i = 0; i < ingest_docs; ++i) {
    int32_t docid = -1;
    bench::CheckOk(db.AddDocument(MakeDoc(&rng, db.corpus().vocab_size()),
                                  &docid),
                   "add document");
  }
  const double ingest_seconds = ingest_timer.ElapsedSeconds();
  const double docs_per_sec =
      static_cast<double>(ingest_docs) / ingest_seconds;

  // Delta-resident reads: the same queries now merge the compressed base
  // segment with the uncompressed write buffer under live stats.
  std::vector<double> delta_lat =
      MeasureLatencies(db, queries, quiescent_samples);

  // ---- 3. Query latency while a background merge runs. -----------------
  // Several add->merge cycles; every during-merge latency sample lands in
  // one pool. Later cycles compact ever-larger segments, so the merge runs
  // long enough to be measured against.
  std::vector<double> merge_lat;
  uint32_t merges_ok = 0;
  const uint32_t cycles = 3;
  for (uint32_t c = 0; c < cycles; ++c) {
    for (uint32_t i = 0; i < ingest_docs / 4; ++i) {
      bench::CheckOk(db.AddDocument(MakeDoc(&rng, db.corpus().vocab_size()),
                                    nullptr),
                     "add document");
    }
    bench::CheckOk(db.StartMerge(), "start merge");
    ir::SearchOptions sopts;
    ir::SearchResult result;
    size_t i = 0;
    while (db.merge_running()) {
      const ir::Query& q = queries[i++ % queries.size()];
      WallTimer t;
      bench::CheckOk(db.Search(q, ir::RunType::kBm25, sopts, &result),
                     "search during merge");
      merge_lat.push_back(t.ElapsedSeconds());
    }
    bench::CheckOk(db.WaitMerge(), "merge");
    ++merges_ok;
  }
  const double m_p50 = Percentile(merge_lat, 0.50) * 1e3;
  const double m_p99 = Percentile(merge_lat, 0.99) * 1e3;
  const double p50_ratio = q_p50 > 0.0 ? m_p50 / q_p50 : 0.0;

  // Post-merge: everything compacted into one segment again, but the
  // snapshot is no longer "plain" (the docid map is real), so this row
  // shows the steady-state segmented-read overhead.
  std::vector<double> post_lat =
      MeasureLatencies(db, queries, quiescent_samples);

  TablePrinter table({"phase", "p50 (ms)", "p99 (ms)", "samples"});
  table.AddRow({"quiescent (plain)", StrFormat("%.4f", q_p50),
                StrFormat("%.4f", q_p99),
                StrFormat("%zu", quiescent.size())});
  table.AddRow({"delta-resident", StrFormat("%.4f",
                                            Percentile(delta_lat, 0.5) * 1e3),
                StrFormat("%.4f", Percentile(delta_lat, 0.99) * 1e3),
                StrFormat("%zu", delta_lat.size())});
  table.AddRow({"during merge", StrFormat("%.4f", m_p50),
                StrFormat("%.4f", m_p99), StrFormat("%zu", merge_lat.size())});
  table.AddRow({"post-merge", StrFormat("%.4f",
                                        Percentile(post_lat, 0.5) * 1e3),
                StrFormat("%.4f", Percentile(post_lat, 0.99) * 1e3),
                StrFormat("%zu", post_lat.size())});
  table.Print();
  std::printf(
      "ingest: %u docs in %.2fs (%.0f docs/s), %u/%u merges committed\n\n",
      ingest_docs, ingest_seconds, docs_per_sec, merges_ok, cycles);

  // The gate needs a real sample and a core for the merge thread to hide
  // on; otherwise it reports but does not judge.
  const bool gated = cores >= 4 && merge_lat.size() >= 50;
  std::printf("GATE cores %u\n", cores);
  std::printf("GATE interference_gated %d\n", gated ? 1 : 0);
  std::printf("GATE merge_samples %zu\n", merge_lat.size());
  std::printf("GATE quiescent_p50_ms %.4f\n", q_p50);
  std::printf("GATE merge_p50_ms %.4f\n", m_p50);
  std::printf("GATE merge_p50_ratio %.3f\n", p50_ratio);
  std::printf("GATE ingest_docs_per_sec %.0f\n", docs_per_sec);
  std::printf("GATE merges_ok %u\n", merges_ok);

  const char* json_path = std::getenv("X100IR_BENCH_JSON");
  if (json_path != nullptr) {
    std::FILE* f = std::fopen(json_path, "w");
    bench::CheckOk(f != nullptr ? OkStatus() : IOError("cannot write json"),
                   "open json");
    std::fprintf(
        f,
        "{\n"
        "  \"comment\": \"Live-update interference: ranked-query p50/p99 "
        "quiescent vs delta-resident vs during a background merge, plus "
        "ingest docs/sec. Gated value: during-merge p50 within 2x of "
        "quiescent (cpu-relative, self-disabled under 4 cores).\",\n"
        "  \"command\": \"X100IR_BENCH_JSON=BENCH_ingest.json "
        "./build/bench_ingest\",\n"
        "  \"cores\": %u,\n"
        "  \"ingest_docs\": %u,\n"
        "  \"ingest_docs_per_sec\": %.0f,\n"
        "  \"phases\": [\n"
        "    {\"phase\": \"quiescent\", \"p50_ms\": %.4f, \"p99_ms\": "
        "%.4f},\n"
        "    {\"phase\": \"delta_resident\", \"p50_ms\": %.4f, \"p99_ms\": "
        "%.4f},\n"
        "    {\"phase\": \"during_merge\", \"p50_ms\": %.4f, \"p99_ms\": "
        "%.4f, \"samples\": %zu},\n"
        "    {\"phase\": \"post_merge\", \"p50_ms\": %.4f, \"p99_ms\": "
        "%.4f}\n"
        "  ],\n"
        "  \"merge_p50_ratio\": %.3f\n"
        "}\n",
        cores, ingest_docs, docs_per_sec, q_p50, q_p99,
        Percentile(delta_lat, 0.5) * 1e3, Percentile(delta_lat, 0.99) * 1e3,
        m_p50, m_p99, merge_lat.size(), Percentile(post_lat, 0.5) * 1e3,
        Percentile(post_lat, 0.99) * 1e3, p50_ratio);
    std::fclose(f);
    std::fprintf(stderr, "[bench] wrote %s\n", json_path);
  }

  // Host-independent hard failures; the latency gate itself is CI's awk
  // (and only when interference_gated says the host can judge it).
  if (merges_ok != cycles) {
    std::fprintf(stderr, "FATAL: %u/%u merges committed\n", merges_ok,
                 cycles);
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace x100ir

int main() { return x100ir::Run(); }
