// Live-update interference bench (DESIGN.md §10): what does the segmented
// index cost the read path while it is being written to?
//
//   1. Quiescent baseline — ranked-query p50/p99 against the freshly
//      opened (single-segment, "plain" snapshot) database.
//   2. Ingest throughput — AddDocument docs/sec into the delta write
//      buffer, each add publishing a new snapshot.
//   3. Merge interference — the gated phase: query latency measured while
//      a background merge compacts the delta into a new compressed
//      segment. Queries run against the sealed delta + old segments the
//      whole time (snapshot pinning; no read ever blocks on the merge).
//
//   4. WAL durability cost (DESIGN.md §13) — ingest docs/sec with the WAL
//      off (the volatile pre-§13 tier), fsync-per-write, and group commit,
//      concurrent writers in every mode. Group commit's claim is that one
//      fsync amortizes over a batch of acknowledged writes, so its
//      throughput must sit far above fsync-per-write whenever fsync has a
//      real cost.
//
// Gates: during-merge p50 within 2x of the quiescent p50, and group-commit
// ingest >= 5x fsync-per-write. Both comparisons are host-relative, and
// both self-disable where the host can't judge them: the interference gate
// under 4 cores (the merge thread needs a core to hide on), the WAL gate
// under 4 cores (writers must be able to append while the leader's fsync
// is in flight; on one core their wake-ups serialize behind it) or when a
// probe measures fsync below ~100us — on tmpfs/ramdisk CI an fsync is
// nearly free, so serializing one per write costs nothing and the
// amortization ratio is structurally unmeasurable there.
#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "storage/wal.h"

#include "bench/bench_util.h"
#include "common/rng.h"
#include "common/string_util.h"
#include "common/table_printer.h"
#include "common/timer.h"
#include "ir/query_gen.h"
#include "ir/search_engine.h"

namespace x100ir {
namespace {

double Percentile(std::vector<double> v, double q) {
  if (v.empty()) return 0.0;
  std::sort(v.begin(), v.end());
  const size_t idx = static_cast<size_t>(q * static_cast<double>(v.size()));
  return v[std::min(idx, v.size() - 1)];
}

// Runs `samples` ranked queries round-robin over the batch, recording
// per-query wall latency. Aborts the bench on any query failure.
std::vector<double> MeasureLatencies(const core::Database& db,
                                     const std::vector<ir::Query>& queries,
                                     size_t samples) {
  ir::SearchOptions opts;
  ir::SearchResult result;
  std::vector<double> lat;
  lat.reserve(samples);
  for (size_t i = 0; i < samples; ++i) {
    const ir::Query& q = queries[i % queries.size()];
    WallTimer t;
    bench::CheckOk(db.Search(q, ir::RunType::kBm25, opts, &result), "search");
    lat.push_back(t.ElapsedSeconds());
  }
  return lat;
}

// One synthetic ingest document: uniform draws over the vocabulary
// (duplicates fold into tf). Uniform (not Zipf) keeps the generator out of
// the measured loop — ingest cost is dominated by posting appends and
// snapshot publication, not term choice.
std::vector<uint32_t> MakeDoc(Rng* rng, uint32_t vocab) {
  const uint32_t len = 30 + static_cast<uint32_t>(rng->Next() % 50);
  std::vector<uint32_t> terms(len);
  for (uint32_t i = 0; i < len; ++i) {
    terms[i] = static_cast<uint32_t>(rng->Next() % vocab);
  }
  return terms;
}

// Median latency of a 1-byte write + fsync on the bench volume. This is
// what one acknowledged fsync-per-write add pays at minimum; when it is
// micro-seconds (tmpfs), the group-commit amortization has nothing to
// amortize and the WAL gate must not judge.
double FsyncProbeMicros(const std::string& dir) {
  std::filesystem::create_directories(dir);
  const std::string path = dir + "/fsync_probe.tmp";
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) return 0.0;
  const int fd = fileno(f);
  std::vector<double> us;
  const char byte = 0;
  for (int i = 0; i < 25; ++i) {
    WallTimer t;
    std::fwrite(&byte, 1, 1, f);
    std::fflush(f);
    fsync(fd);
    us.push_back(t.ElapsedSeconds() * 1e6);
  }
  std::fclose(f);
  std::remove(path.c_str());
  std::sort(us.begin(), us.end());
  return us[us.size() / 2];
}

// The durability phase's document: small (8-24 terms), so the acknowledged
// write is dominated by the fsync and not by posting appends — the regime
// the group-commit amortization claim is about. A log-shipping workload
// with 100x the CPU cost per record would dilute any fsync batching win no
// matter how the log is engineered.
std::vector<uint32_t> MakeSmallDoc(Rng* rng, uint32_t vocab) {
  const uint32_t len = 8 + static_cast<uint32_t>(rng->Next() % 16);
  std::vector<uint32_t> terms(len);
  for (uint32_t i = 0; i < len; ++i) {
    terms[i] = static_cast<uint32_t>(rng->Next() % vocab);
  }
  return terms;
}

struct WalModeResult {
  double docs_per_sec = 0.0;
  uint64_t fsyncs = 0;
  uint64_t batch_max = 0;
};

// Ingests `docs` documents from `threads` concurrent writers into a fresh
// on-disk database under the given WAL configuration. Every add is an
// acknowledged write: in the durable modes the measured docs/sec includes
// the covering fsync (or the group-commit wait for one).
WalModeResult MeasureWalMode(const std::string& dir,
                             const ir::CorpusOptions& corpus, bool enabled,
                             storage::WalSyncMode mode, uint32_t docs,
                             uint32_t threads, uint64_t seed) {
  std::filesystem::remove_all(dir);
  core::DatabaseOptions opts;
  opts.dir = dir;
  opts.corpus = corpus;
  opts.storage.wal.enabled = enabled;
  opts.storage.wal.mode = mode;
  core::Database db;
  bench::CheckOk(db.Open(opts), "open wal-mode database");

  const uint32_t per_thread = docs / threads;
  WallTimer timer;
  std::vector<std::thread> writers;
  for (uint32_t t = 0; t < threads; ++t) {
    writers.emplace_back([&db, t, per_thread, seed] {
      Rng rng(seed ^ (0xD1CEull * (t + 1)));
      for (uint32_t i = 0; i < per_thread; ++i) {
        bench::CheckOk(db.AddDocument(
                           MakeSmallDoc(&rng, db.corpus().vocab_size()),
                           nullptr),
                       "wal-mode add");
      }
    });
  }
  for (std::thread& w : writers) w.join();
  const double seconds = timer.ElapsedSeconds();

  WalModeResult r;
  r.docs_per_sec =
      seconds > 0.0 ? static_cast<double>(per_thread * threads) / seconds : 0.0;
  const storage::WalStats ws = db.wal_stats();
  r.fsyncs = ws.fsyncs;
  r.batch_max = ws.batch_records_max;
  return r;
}

int Run() {
  std::printf("=== Segmented index: ingest vs query interference ===\n\n");

  core::DatabaseOptions opts;
  opts.dir = bench::BenchDir() + "/ingest";
  opts.corpus = bench::BenchCorpusOptions();
  opts.corpus.num_docs = std::min(opts.corpus.num_docs, 20000u);
  opts.corpus.num_topics = 20;
  opts.corpus.relevant_docs_per_topic = 60;
  // Phases 1-3 measure read/merge interference, not durability: the WAL is
  // explicitly off so their numbers stay comparable with earlier baselines.
  // Phase 4 measures exactly the cost switching it on adds.
  opts.storage.wal.enabled = false;
  core::Database db;
  bench::CheckOk(db.Open(opts), "open database");

  ir::QueryGenOptions qopts = bench::BenchQueryOptions();
  qopts.num_efficiency_queries = 100;
  ir::QueryGenerator gen(db.corpus(), qopts);
  const std::vector<ir::Query> queries = gen.EfficiencyQueries();
  const uint32_t cores = std::thread::hardware_concurrency();
  const bool tiny = bench::Scale() == bench::BenchScale::kTiny;
  const size_t quiescent_samples = tiny ? 300 : 600;
  const uint32_t ingest_docs = tiny ? 2000 : 8000;

  // ---- 1. Quiescent baseline (plain snapshot, monolithic hot path). ----
  MeasureLatencies(db, queries, queries.size());  // warm
  std::vector<double> quiescent =
      MeasureLatencies(db, queries, quiescent_samples);
  const double q_p50 = Percentile(quiescent, 0.50) * 1e3;
  const double q_p99 = Percentile(quiescent, 0.99) * 1e3;

  // ---- 2. Ingest throughput into the delta write buffer. ---------------
  Rng rng(0x1267E57);
  WallTimer ingest_timer;
  for (uint32_t i = 0; i < ingest_docs; ++i) {
    int32_t docid = -1;
    bench::CheckOk(db.AddDocument(MakeDoc(&rng, db.corpus().vocab_size()),
                                  &docid),
                   "add document");
  }
  const double ingest_seconds = ingest_timer.ElapsedSeconds();
  const double docs_per_sec =
      static_cast<double>(ingest_docs) / ingest_seconds;

  // Delta-resident reads: the same queries now merge the compressed base
  // segment with the uncompressed write buffer under live stats.
  std::vector<double> delta_lat =
      MeasureLatencies(db, queries, quiescent_samples);

  // ---- 3. Query latency while a background merge runs. -----------------
  // Several add->merge cycles; every during-merge latency sample lands in
  // one pool. Later cycles compact ever-larger segments, so the merge runs
  // long enough to be measured against.
  std::vector<double> merge_lat;
  uint32_t merges_ok = 0;
  const uint32_t cycles = 3;
  for (uint32_t c = 0; c < cycles; ++c) {
    for (uint32_t i = 0; i < ingest_docs / 4; ++i) {
      bench::CheckOk(db.AddDocument(MakeDoc(&rng, db.corpus().vocab_size()),
                                    nullptr),
                     "add document");
    }
    bench::CheckOk(db.StartMerge(), "start merge");
    ir::SearchOptions sopts;
    ir::SearchResult result;
    size_t i = 0;
    while (db.merge_running()) {
      const ir::Query& q = queries[i++ % queries.size()];
      WallTimer t;
      bench::CheckOk(db.Search(q, ir::RunType::kBm25, sopts, &result),
                     "search during merge");
      merge_lat.push_back(t.ElapsedSeconds());
    }
    bench::CheckOk(db.WaitMerge(), "merge");
    ++merges_ok;
  }
  const double m_p50 = Percentile(merge_lat, 0.50) * 1e3;
  const double m_p99 = Percentile(merge_lat, 0.99) * 1e3;
  const double p50_ratio = q_p50 > 0.0 ? m_p50 / q_p50 : 0.0;

  // Post-merge: everything compacted into one segment again, but the
  // snapshot is no longer "plain" (the docid map is real), so this row
  // shows the steady-state segmented-read overhead.
  std::vector<double> post_lat =
      MeasureLatencies(db, queries, quiescent_samples);

  // ---- 4. WAL durability cost: off vs fsync-per-write vs group commit. --
  const double fsync_probe_us = FsyncProbeMicros(bench::BenchDir());
  ir::CorpusOptions wal_corpus = opts.corpus;
  wal_corpus.num_docs = 2000;  // small base: this phase times adds, not opens
  wal_corpus.relevant_docs_per_topic = 20;
  // Enough concurrent writers that a group-commit batch can form while one
  // fsync is in flight; they spend most of their time blocked in Sync, so
  // the count is fine even on few cores.
  const uint32_t wal_threads = 16;
  const uint32_t wal_docs = tiny ? 800 : 3200;
  const uint64_t wal_seed = 0xDA7A10ull;
  const WalModeResult wal_off = MeasureWalMode(
      bench::BenchDir() + "/ingest_wal_off", wal_corpus, /*enabled=*/false,
      storage::WalSyncMode::kGroupCommit, wal_docs, wal_threads, wal_seed);
  const WalModeResult wal_fsync = MeasureWalMode(
      bench::BenchDir() + "/ingest_wal_fsync", wal_corpus, /*enabled=*/true,
      storage::WalSyncMode::kFsyncPerWrite, wal_docs, wal_threads, wal_seed);
  const WalModeResult wal_group = MeasureWalMode(
      bench::BenchDir() + "/ingest_wal_group", wal_corpus, /*enabled=*/true,
      storage::WalSyncMode::kGroupCommit, wal_docs, wal_threads, wal_seed);
  const double wal_ratio = wal_fsync.docs_per_sec > 0.0
                               ? wal_group.docs_per_sec / wal_fsync.docs_per_sec
                               : 0.0;

  TablePrinter table({"phase", "p50 (ms)", "p99 (ms)", "samples"});
  table.AddRow({"quiescent (plain)", StrFormat("%.4f", q_p50),
                StrFormat("%.4f", q_p99),
                StrFormat("%zu", quiescent.size())});
  table.AddRow({"delta-resident", StrFormat("%.4f",
                                            Percentile(delta_lat, 0.5) * 1e3),
                StrFormat("%.4f", Percentile(delta_lat, 0.99) * 1e3),
                StrFormat("%zu", delta_lat.size())});
  table.AddRow({"during merge", StrFormat("%.4f", m_p50),
                StrFormat("%.4f", m_p99), StrFormat("%zu", merge_lat.size())});
  table.AddRow({"post-merge", StrFormat("%.4f",
                                        Percentile(post_lat, 0.5) * 1e3),
                StrFormat("%.4f", Percentile(post_lat, 0.99) * 1e3),
                StrFormat("%zu", post_lat.size())});
  table.Print();
  std::printf(
      "ingest: %u docs in %.2fs (%.0f docs/s), %u/%u merges committed\n\n",
      ingest_docs, ingest_seconds, docs_per_sec, merges_ok, cycles);

  TablePrinter wal_table(
      {"wal mode", "docs/s", "fsyncs", "max batch"});
  wal_table.AddRow({"off (volatile)", StrFormat("%.0f", wal_off.docs_per_sec),
                    "0", "-"});
  wal_table.AddRow({"fsync-per-write",
                    StrFormat("%.0f", wal_fsync.docs_per_sec),
                    StrFormat("%llu", static_cast<unsigned long long>(
                                          wal_fsync.fsyncs)),
                    "1"});
  wal_table.AddRow({"group commit",
                    StrFormat("%.0f", wal_group.docs_per_sec),
                    StrFormat("%llu", static_cast<unsigned long long>(
                                          wal_group.fsyncs)),
                    StrFormat("%llu", static_cast<unsigned long long>(
                                          wal_group.batch_max))});
  wal_table.Print();
  std::printf(
      "wal: %u docs x %u writers per mode, fsync probe %.1fus, "
      "group/fsync %.2fx\n\n",
      wal_docs, wal_threads, fsync_probe_us, wal_ratio);

  // The gate needs a real sample and a core for the merge thread to hide
  // on; otherwise it reports but does not judge.
  const bool gated = cores >= 4 && merge_lat.size() >= 50;
  std::printf("GATE cores %u\n", cores);
  std::printf("GATE interference_gated %d\n", gated ? 1 : 0);
  std::printf("GATE merge_samples %zu\n", merge_lat.size());
  std::printf("GATE quiescent_p50_ms %.4f\n", q_p50);
  std::printf("GATE merge_p50_ms %.4f\n", m_p50);
  std::printf("GATE merge_p50_ratio %.3f\n", p50_ratio);
  std::printf("GATE ingest_docs_per_sec %.0f\n", docs_per_sec);
  std::printf("GATE merges_ok %u\n", merges_ok);

  // The WAL gate judges only where the group-commit premise is physically
  // measurable: fsync must cost something real (a volume whose fsync is
  // ~free — tmpfs CI — flattens all three modes together), and the host
  // needs cores for writers to append *while* the leader's fsync is in
  // flight. On one core the waiters' wake-ups serialize behind the leader,
  // so filling a batch costs about the fsync it is meant to hide — the
  // same structural self-disable as interference_gated above.
  const bool wal_gated = cores >= 4 && fsync_probe_us >= 100.0;
  std::printf("GATE fsync_probe_us %.1f\n", fsync_probe_us);
  std::printf("GATE wal_gated %d\n", wal_gated ? 1 : 0);
  std::printf("GATE wal_off_docs_per_sec %.0f\n", wal_off.docs_per_sec);
  std::printf("GATE wal_fsync_docs_per_sec %.0f\n", wal_fsync.docs_per_sec);
  std::printf("GATE wal_group_docs_per_sec %.0f\n", wal_group.docs_per_sec);
  std::printf("GATE wal_group_vs_fsync %.2f\n", wal_ratio);
  std::printf("GATE wal_group_batch_max %llu\n",
              static_cast<unsigned long long>(wal_group.batch_max));

  const char* json_path = std::getenv("X100IR_BENCH_JSON");
  if (json_path != nullptr) {
    std::FILE* f = std::fopen(json_path, "w");
    bench::CheckOk(f != nullptr ? OkStatus() : IOError("cannot write json"),
                   "open json");
    std::fprintf(
        f,
        "{\n"
        "  \"comment\": \"Live-update interference + WAL durability cost: "
        "ranked-query p50/p99 quiescent vs delta-resident vs during a "
        "background merge, ingest docs/sec, and acknowledged-write "
        "throughput with the WAL off / fsync-per-write / group-committed. "
        "Gated values: during-merge p50 within 2x of quiescent "
        "(self-disabled under 4 cores) and group-commit >= 5x "
        "fsync-per-write (self-disabled under 4 cores -- one core "
        "serializes waiter wake-ups behind the flush leader -- or when an "
        "fsync probe reads < 100us -- tmpfs).\",\n"
        "  \"command\": \"X100IR_BENCH_JSON=BENCH_ingest.json "
        "./build/bench_ingest\",\n"
        "  \"cores\": %u,\n"
        "  \"ingest_docs\": %u,\n"
        "  \"ingest_docs_per_sec\": %.0f,\n"
        "  \"phases\": [\n"
        "    {\"phase\": \"quiescent\", \"p50_ms\": %.4f, \"p99_ms\": "
        "%.4f},\n"
        "    {\"phase\": \"delta_resident\", \"p50_ms\": %.4f, \"p99_ms\": "
        "%.4f},\n"
        "    {\"phase\": \"during_merge\", \"p50_ms\": %.4f, \"p99_ms\": "
        "%.4f, \"samples\": %zu},\n"
        "    {\"phase\": \"post_merge\", \"p50_ms\": %.4f, \"p99_ms\": "
        "%.4f}\n"
        "  ],\n"
        "  \"merge_p50_ratio\": %.3f,\n"
        "  \"wal\": {\n"
        "    \"docs\": %u,\n"
        "    \"writer_threads\": %u,\n"
        "    \"fsync_probe_us\": %.1f,\n"
        "    \"gated\": %s,\n"
        "    \"off_docs_per_sec\": %.0f,\n"
        "    \"fsync_per_write_docs_per_sec\": %.0f,\n"
        "    \"group_commit_docs_per_sec\": %.0f,\n"
        "    \"group_vs_fsync\": %.2f,\n"
        "    \"group_fsyncs\": %llu,\n"
        "    \"group_batch_max\": %llu\n"
        "  }\n"
        "}\n",
        cores, ingest_docs, docs_per_sec, q_p50, q_p99,
        Percentile(delta_lat, 0.5) * 1e3, Percentile(delta_lat, 0.99) * 1e3,
        m_p50, m_p99, merge_lat.size(), Percentile(post_lat, 0.5) * 1e3,
        Percentile(post_lat, 0.99) * 1e3, p50_ratio, wal_docs, wal_threads,
        fsync_probe_us, wal_gated ? "true" : "false", wal_off.docs_per_sec,
        wal_fsync.docs_per_sec, wal_group.docs_per_sec, wal_ratio,
        static_cast<unsigned long long>(wal_group.fsyncs),
        static_cast<unsigned long long>(wal_group.batch_max));
    std::fclose(f);
    std::fprintf(stderr, "[bench] wrote %s\n", json_path);
  }

  // Host-independent hard failures; the latency gate itself is CI's awk
  // (and only when interference_gated says the host can judge it).
  if (merges_ok != cycles) {
    std::fprintf(stderr, "FATAL: %u/%u merges committed\n", merges_ok,
                 cycles);
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace x100ir

int main() { return x100ir::Run(); }
